"""Oracle-differential harnesses for sharded and indexed execution.

Sharding must be **invisible** in the answer: for any dataset, query,
shard count and backend, the sharded run has to return the exact record
ids the unsharded oracle returns — same set, same order — and its cost
accounting has to decompose exactly into the per-shard parts it reports.
This module verifies that behaviourally, the same way
:mod:`repro.testing.verify` does for single-partition algorithms: a
storm of randomized workloads, each replayed across every shard count
and backend, with three invariants asserted per run:

- **bit-identical results** against the pruner oracle
  (:func:`repro.skyline.oracle.reverse_skyline_by_pruners`);
- **exact cost decomposition**: ``CostStats.merged`` over the reported
  per-shard stats equals the global stats on every counter — pruner
  candidates, dominance checks, phase-2 IO, result count — except wall
  time (shard walls sum to total *work*, the global wall is elapsed
  time);
- **exact partitioning**: the shard plan covers every record id exactly
  once (:meth:`~repro.shard.planner.ShardPlan.check_partition`).

    report = verify_sharded_equivalence(trials=50, seed=0)
    assert report.ok, report.failures[0]

:func:`verify_index_equivalence` is the same storm pointed at the
``ITRS`` candidate-generation index: exact mode must be bit-identical to
the pruner oracle on every trial, across both compute backends and every
execution pool (serial / thread / process — the process pool additionally
exercises the shared-memory index publication path).  Approximate mode
(``recall_targets``) can only *add* survivors, so those runs assert the
superset contract plus a sane ``measured_recall``.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.storage.disk import MemoryBudget
from repro.testing.verify import (
    VerificationFailure,
    VerificationReport,
    random_workload,
)

__all__ = ["verify_index_equivalence", "verify_sharded_equivalence"]

#: CostStats counters that must decompose exactly across shards.
#: ``wall_time_s`` is deliberately absent: per-shard walls sum to total
#: work, while the global figure is elapsed time under the stopwatch.
_EXACT_COUNTERS = (
    "checks_phase1",
    "checks_phase2",
    "pruner_tests",
    "phase1_pruned",
    "intermediate_count",
    "phase1_batches",
    "phase2_batches",
    "db_passes",
    "result_count",
)


def _cost_mismatch(result) -> str | None:
    """Return a description of the first violated cost invariant, if any."""
    from repro.core.base import CostStats

    merged = CostStats.merged(part.stats for part in result.shard_stats)
    for counter in _EXACT_COUNTERS:
        want = getattr(merged, counter)
        have = getattr(result.stats, counter)
        if want != have:
            return f"{counter}: shards sum to {want}, global reports {have}"
    if merged.io != result.stats.io:
        return f"io: shards sum to {merged.io}, global reports {result.stats.io}"
    return None


def verify_sharded_equivalence(
    *,
    trials: int = 50,
    seed: int = 0,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    backends: tuple[str | None, ...] = ("python", "numpy"),
    strategy: str = "auto",
    max_failures: int = 5,
) -> VerificationReport:
    """Replay ``trials`` randomized workloads through ``SGTRS`` for every
    shard count and backend, asserting bit-identical results against the
    unsharded pruner oracle plus the exact cost-decomposition and
    partition invariants (module docstring).

    Each (trial, K, backend) combination is an independent run; the
    first divergence per combination is recorded as a
    :class:`~repro.testing.verify.VerificationFailure` carrying the full
    reproducible :class:`~repro.testing.verify.WorkloadCase`.
    """
    if trials < 1:
        raise ExperimentError(f"trials must be >= 1, got {trials}")
    if not shard_counts or any(k < 1 for k in shard_counts):
        raise ExperimentError(
            f"shard_counts must be positive, got {shard_counts!r}"
        )
    from repro.core.registry import make_algorithm

    report = VerificationReport()
    for t in range(trials):
        case = random_workload(seed + t)
        expected = tuple(reverse_skyline_by_pruners(case.dataset, case.query))
        report.trials += 1
        for shards in shard_counts:
            for backend in backends:
                try:
                    algo = make_algorithm(
                        "SGTRS",
                        case.dataset,
                        backend=backend,
                        shards=shards,
                        strategy=strategy,
                        budget=MemoryBudget(case.budget_pages),
                        page_bytes=case.page_bytes,
                    )
                    algo.prepare()
                    # Raises AlgorithmError when the plan is not a partition.
                    algo.shard_plan.check_partition(len(case.dataset))
                    result = algo.run(case.query)
                    got = tuple(result.record_ids)
                except Exception as exc:  # noqa: BLE001 - the point is to report it
                    report.failures.append(
                        VerificationFailure(
                            case,
                            expected,
                            None,
                            error=f"K={shards}, backend={backend}: {exc!r}",
                        )
                    )
                else:
                    if got != expected:
                        report.failures.append(
                            VerificationFailure(case, expected, got)
                        )
                    else:
                        mismatch = _cost_mismatch(result)
                        if mismatch is not None:
                            report.failures.append(
                                VerificationFailure(
                                    case,
                                    expected,
                                    got,
                                    error=(
                                        f"K={shards}, backend={backend}: "
                                        f"cost invariant violated — {mismatch}"
                                    ),
                                )
                            )
                if len(report.failures) >= max_failures:
                    return report
    return report


def verify_index_equivalence(
    *,
    trials: int = 50,
    seed: int = 0,
    backends: tuple[str | None, ...] = ("python", "numpy"),
    pools: tuple[str, ...] = ("serial", "thread", "process"),
    recall_targets: tuple[float | None, ...] = (None,),
    batch_size: int = 3,
    max_failures: int = 5,
) -> "VerificationReport":
    """Replay ``trials`` randomized workloads through ``ITRS`` against
    the pruner oracle.

    Exact mode (``recall_target=None``, always exercised first) must be
    **bit-identical** on every trial — same record ids, same order — for
    every backend, both through a direct :class:`~repro.core.indexed.
    IndexedTRS` and through the engine's batch executor on every pool in
    ``pools`` (the process pool publishes the built index over shared
    memory, so worker-side import is covered too).  Costs may differ
    between backends; results may not.

    Entries in ``recall_targets`` other than ``None`` run the calibrated
    band rule and assert the approximate contract instead: the result is
    a **superset** of the exact reverse skyline (missing a pruner only
    adds survivors) and ``measured_recall`` is a sane probability.
    """
    if trials < 1:
        raise ExperimentError(f"trials must be >= 1, got {trials}")
    if not pools or any(p not in ("serial", "thread", "process") for p in pools):
        raise ExperimentError(
            f"pools must be drawn from serial/thread/process, got {pools!r}"
        )
    import numpy as np

    from repro.core.registry import make_algorithm
    from repro.engine import ReverseSkylineEngine

    report = VerificationReport()
    for t in range(trials):
        case = random_workload(seed + t)
        expected = tuple(reverse_skyline_by_pruners(case.dataset, case.query))
        report.trials += 1
        rng = np.random.default_rng((seed + t) * 6151 + 3)
        cards = case.dataset.schema.cardinalities()
        batch = [case.query] + [
            tuple(int(rng.integers(0, c)) for c in cards)
            for _ in range(max(0, batch_size - 1))
        ]
        batch_expected = [
            tuple(reverse_skyline_by_pruners(case.dataset, q)) for q in batch
        ]
        for backend in backends:
            for target in recall_targets:
                label = f"backend={backend}, recall_target={target}"
                try:
                    algo = make_algorithm(
                        "ITRS",
                        case.dataset,
                        backend=backend,
                        recall_target=target,
                        budget=MemoryBudget(case.budget_pages),
                        page_bytes=case.page_bytes,
                    )
                    result = algo.run(case.query)
                    got = tuple(result.record_ids)
                except Exception as exc:  # noqa: BLE001 - the point is to report it
                    report.failures.append(
                        VerificationFailure(
                            case, expected, None, error=f"{label}: {exc!r}"
                        )
                    )
                    continue
                if target is None:
                    if got != expected:
                        report.failures.append(
                            VerificationFailure(case, expected, got)
                        )
                elif not set(expected) <= set(got) or not (
                    0.0 <= result.measured_recall <= 1.0
                ):
                    report.failures.append(
                        VerificationFailure(
                            case,
                            expected,
                            got,
                            error=(
                                f"{label}: approximate contract violated "
                                f"(measured_recall={result.measured_recall})"
                            ),
                        )
                    )
            # Pool coverage runs exact mode only: pools must never change
            # an answer, and exact answers are pinned to the oracle.
            for pool in pools:
                label = f"backend={backend}, pool={pool}"
                try:
                    engine = ReverseSkylineEngine(
                        case.dataset,
                        algorithm="ITRS",
                        index=True,
                        backend=backend,
                        page_bytes=case.page_bytes,
                        log_queries=False,
                    )
                    batch_report = engine.query_many(
                        batch,
                        pool=pool,
                        workers=2,
                        cache=False,
                        shm=(pool == "process"),
                    )
                    got_batch = [
                        tuple(r.record_ids) for r in batch_report.results
                    ]
                except Exception as exc:  # noqa: BLE001 - the point is to report it
                    report.failures.append(
                        VerificationFailure(
                            case, expected, None, error=f"{label}: {exc!r}"
                        )
                    )
                    continue
                for want, have in zip(batch_expected, got_batch):
                    if want != have:
                        report.failures.append(
                            VerificationFailure(
                                case,
                                want,
                                have,
                                error=f"{label}: pooled result diverged",
                            )
                        )
                        break
        if len(report.failures) >= max_failures:
            break
    return report
