"""Maintenance-equivalence harness: delta trees vs. rebuild-from-scratch.

The contract of :mod:`repro.maint` is a single sentence — *a maintained
engine answers every query bit-identically to an engine rebuilt from
scratch over the live records* — and this module verifies it the way
the repo verifies everything behavioural: a storm of randomized
workloads, each driven through a random interleaving of insert/delete
batches, with the maintained answer compared to the rebuild oracle
after **every** batch, across backends and execution pools.

Per trial the harness exercises, in order:

1. random mutation batches (inserts drawn from the schema's domains,
   deletes sampled from the live stable ids), with the compaction
   threshold dropped low enough that automatic compactions fire
   mid-stream;
2. a **crash mid-compaction** (via :attr:`MaintStore._crash_hook`, which
   raises after the new base is built but before it is published) —
   the store must keep answering bit-identically from the old base +
   deltas, and a subsequent clean compaction must succeed;
3. a forced clean :meth:`~repro.maint.MaintainedEngine.compact`;
4. a pooled batch run (serial / thread / process — the process pool
   exercises the delta wire-state shipping and, with shm, the delta
   segment publication) compared slot-for-slot against the oracle.

    report = verify_maint_equivalence(trials=25, seed=0)
    assert report.ok, report.failures[0]
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import ExperimentError
from repro.testing.verify import (
    VerificationFailure,
    WorkloadCase,
    random_workload,
)

__all__ = ["MaintReport", "verify_maint_equivalence"]


@dataclass
class MaintReport:
    """Outcome of one maintenance-equivalence storm."""

    trials: int = 0
    #: Mutation batches applied across all trials and backends.
    batches: int = 0
    #: Compactions observed (automatic + forced, across all stores).
    compactions: int = 0
    #: Injected mid-compaction crashes the stores recovered from.
    crash_recoveries: int = 0
    #: Individual answer comparisons against the rebuild oracle.
    checks: int = 0
    failures: list[VerificationFailure] = field(default_factory=list)
    #: Pools that could not run in this environment (never failures).
    skipped_pools: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _rebuild_oracle_ids(store, query, *, page_bytes: int) -> tuple[int, ...]:
    """The ground truth: a plain engine built from scratch over the live
    records, its positional answer translated back to stable ids."""
    from repro.engine import ReverseSkylineEngine

    live = store.live_entries()
    if not live:
        return ()
    base = store.base
    dataset = Dataset(
        base.schema,
        [values for _, values in live],
        base.space,
        validate=False,
        name="maint-oracle",
    )
    oracle = ReverseSkylineEngine(
        dataset, page_bytes=page_bytes, log_queries=False
    )
    sids = [sid for sid, _ in live]
    return tuple(sorted(sids[p] for p in oracle.query(query).record_ids))


def verify_maint_equivalence(
    *,
    trials: int = 25,
    seed: int = 0,
    backends: tuple[str | None, ...] = ("python", "numpy"),
    pools: tuple[str, ...] = ("serial", "thread", "process"),
    batches: int = 6,
    queries_per_check: int = 3,
    crash_compaction: bool = True,
    max_failures: int = 5,
) -> MaintReport:
    """Drive ``trials`` random workloads through random update
    interleavings and assert bit-identical answers against the rebuild
    oracle after every batch (module docstring).

    Each (trial, backend) pair is an independent maintained engine with
    a low compaction threshold, so automatic compactions, the injected
    crash and the forced compaction all happen on most trials; ``pools``
    are exercised on the final state of every engine. Pools unavailable
    in the environment (sandboxes without process primitives) land in
    ``skipped_pools``, not in ``failures``.
    """
    if trials < 1:
        raise ExperimentError(f"trials must be >= 1, got {trials}")
    if batches < 1:
        raise ExperimentError(f"batches must be >= 1, got {batches}")
    if not pools or any(p not in ("serial", "thread", "process") for p in pools):
        raise ExperimentError(
            f"pools must be drawn from serial/thread/process, got {pools!r}"
        )
    from repro.maint import MaintainedEngine

    report = MaintReport()
    unavailable: set[str] = set()

    def check(case: WorkloadCase, engine, queries, label: str) -> bool:
        """Compare every probe query against the oracle; False on miss."""
        for q in queries:
            want = _rebuild_oracle_ids(
                engine.store, q, page_bytes=case.page_bytes
            )
            got = tuple(engine.query(q).record_ids)
            report.checks += 1
            if got != want:
                report.failures.append(
                    VerificationFailure(case, want, got, error=label)
                )
                return False
        return True

    for t in range(trials):
        case = random_workload(seed + t)
        report.trials += 1
        cards = case.dataset.schema.cardinalities()
        for backend in backends:
            rng = np.random.default_rng((seed + t) * 7919 + 11)
            probes = [case.query] + [
                tuple(int(rng.integers(0, c)) for c in cards)
                for _ in range(max(0, queries_per_check - 1))
            ]
            label = f"backend={backend}"
            try:
                engine = MaintainedEngine(
                    case.dataset,
                    backend=backend,
                    page_bytes=case.page_bytes,
                    log_queries=False,
                    compact_min=int(rng.integers(4, 13)),
                    compact_fraction=0.3,
                )
            except Exception as exc:  # noqa: BLE001 - the point is to report it
                report.failures.append(
                    VerificationFailure(
                        case, (), None, error=f"{label}: engine build {exc!r}"
                    )
                )
                continue
            store = engine.store
            ok = True
            for b in range(batches):
                inserts = [
                    tuple(int(rng.integers(0, c)) for c in cards)
                    for _ in range(int(rng.integers(0, 5)))
                ]
                live = [sid for sid, _ in store.live_entries()]
                k = min(len(live), int(rng.integers(0, 4)))
                deletes = (
                    [live[i] for i in rng.choice(len(live), size=k, replace=False)]
                    if k
                    else []
                )
                try:
                    engine.apply_updates(inserts=inserts, deletes=deletes)
                except Exception as exc:  # noqa: BLE001
                    report.failures.append(
                        VerificationFailure(
                            case, (), None,
                            error=f"{label}: batch {b} apply {exc!r}",
                        )
                    )
                    ok = False
                    break
                report.batches += 1
                if not check(case, engine, probes, f"{label}: after batch {b}"):
                    ok = False
                    break
            if not ok or len(report.failures) >= max_failures:
                if len(report.failures) >= max_failures:
                    return report
                continue
            if (
                crash_compaction
                and store.delta_records + store.tombstone_count > 0
            ):
                # Crash after the new base is built, before it publishes:
                # the store must stay on the old epoch and keep answering.
                def _boom() -> None:
                    raise RuntimeError("injected crash mid-compaction")

                store._crash_hook = _boom
                crashed = False
                try:
                    engine.compact()
                except RuntimeError:
                    crashed = True
                finally:
                    store._crash_hook = None
                if not crashed:
                    report.failures.append(
                        VerificationFailure(
                            case, (), None,
                            error=f"{label}: crash hook never fired",
                        )
                    )
                    continue
                report.crash_recoveries += 1
                if not check(case, engine, probes, f"{label}: post-crash"):
                    continue
            try:
                engine.compact()
            except Exception as exc:  # noqa: BLE001
                report.failures.append(
                    VerificationFailure(
                        case, (), None, error=f"{label}: compact {exc!r}"
                    )
                )
                continue
            report.compactions += store.compactions
            if not check(case, engine, probes, f"{label}: post-compaction"):
                continue
            expected = [
                _rebuild_oracle_ids(store, q, page_bytes=case.page_bytes)
                for q in probes
            ]
            for pool in pools:
                if pool in unavailable:
                    continue
                pool_label = f"{label}, pool={pool}"
                try:
                    batch = engine.query_many(
                        probes,
                        pool=pool,
                        workers=2,
                        cache=False,
                        shm=(pool == "process"),
                    )
                    got = [tuple(r.record_ids) for r in batch.results]
                except (OSError, PermissionError) as exc:
                    unavailable.add(pool)
                    report.skipped_pools.append(f"{pool}: {exc}")
                    continue
                except Exception as exc:  # noqa: BLE001
                    report.failures.append(
                        VerificationFailure(
                            case, (), None, error=f"{pool_label}: {exc!r}"
                        )
                    )
                    continue
                for want, have in zip(expected, got):
                    report.checks += 1
                    if want != have:
                        report.failures.append(
                            VerificationFailure(
                                case, want, have,
                                error=f"{pool_label}: pooled result diverged",
                            )
                        )
                        break
            if len(report.failures) >= max_failures:
                return report
    return report
