"""Differential verification harness.

Anyone modifying a reverse-skyline algorithm (or adding a new one) needs
the same safety net this library's own test suite uses: run the algorithm
against the two independent oracles on a storm of randomized workloads —
datasets of varying arity, cardinality, duplication and size; random
non-metric dissimilarities; random queries, budgets and page sizes — and
report any divergence with enough detail to reproduce it.

    report = verify_algorithm(lambda ds, budget, page: TRS(ds, budget=budget,
                                                           page_bytes=page),
                              trials=100, seed=7)
    assert report.ok, report.failures[0]
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.dissim.generators import random_dissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.errors import ExperimentError
from repro.skyline.oracle import (
    reverse_skyline_by_definition,
    reverse_skyline_by_pruners,
)
from repro.storage.disk import MemoryBudget

__all__ = ["WorkloadCase", "VerificationFailure", "VerificationReport",
           "random_workload", "verify_algorithm", "verify_executor"]


@dataclass(frozen=True)
class WorkloadCase:
    """One randomized verification scenario (fully reproducible)."""

    seed: int
    dataset: Dataset
    query: tuple
    budget_pages: int
    page_bytes: int

    def describe(self) -> str:
        return (
            f"seed={self.seed}, {self.dataset.describe()}, query={self.query}, "
            f"budget={self.budget_pages} pages x {self.page_bytes}B"
        )


@dataclass(frozen=True)
class VerificationFailure:
    case: WorkloadCase
    expected: tuple[int, ...]
    got: tuple[int, ...] | None
    error: str | None = None

    def __str__(self) -> str:  # pragma: no cover - diagnostic path
        if self.error is not None:
            return f"{self.case.describe()}: raised {self.error}"
        missing = set(self.expected) - set(self.got or ())
        spurious = set(self.got or ()) - set(self.expected)
        return (
            f"{self.case.describe()}: missing={sorted(missing)}, "
            f"spurious={sorted(spurious)}"
        )


@dataclass
class VerificationReport:
    trials: int = 0
    failures: list[VerificationFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def random_workload(
    seed: int,
    *,
    max_records: int = 80,
    max_attrs: int = 4,
    max_cardinality: int = 6,
    duplicate_boost: bool = True,
) -> WorkloadCase:
    """Generate one reproducible random workload for the given seed."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, max_attrs + 1))
    cards = [int(rng.integers(2, max_cardinality + 1)) for _ in range(m)]
    n = int(rng.integers(0, max_records + 1))
    schema = Schema.categorical(cards)
    space = DissimilaritySpace([random_dissimilarity(c, rng) for c in cards])
    records = [tuple(int(rng.integers(0, c)) for c in cards) for _ in range(n)]
    if duplicate_boost and records and rng.random() < 0.5:
        records += [
            records[int(rng.integers(0, len(records)))] for _ in range(n // 2)
        ]
    dataset = Dataset(schema, records, space, validate=False, name=f"fuzz-{seed}")
    query = tuple(int(rng.integers(0, c)) for c in cards)
    budget_pages = int(rng.integers(2, 7))
    record_bytes = 4 + 4 * m
    page_bytes = int(rng.choice([record_bytes, 64, 256]))
    # One record per page minimum, and the simulator's own floor of 16B.
    page_bytes = max(page_bytes, record_bytes, 16)
    return WorkloadCase(
        seed=seed,
        dataset=dataset,
        query=query,
        budget_pages=budget_pages,
        page_bytes=page_bytes,
    )


def verify_algorithm(
    factory: Callable[[Dataset, MemoryBudget, int], object],
    *,
    trials: int = 50,
    seed: int = 0,
    check_definition_oracle: bool = False,
    max_failures: int = 5,
) -> VerificationReport:
    """Run ``factory``-built algorithms against the oracles on ``trials``
    random workloads.

    ``factory(dataset, budget, page_bytes)`` must return an object with a
    ``run(query)`` method yielding an ``RSResult`` (every algorithm in
    :mod:`repro.core` qualifies). ``check_definition_oracle`` additionally
    cross-checks the two oracles against each other (slower).
    """
    if trials < 1:
        raise ExperimentError(f"trials must be >= 1, got {trials}")
    report = VerificationReport()
    for t in range(trials):
        case = random_workload(seed + t)
        expected = tuple(reverse_skyline_by_pruners(case.dataset, case.query))
        if check_definition_oracle:
            by_def = tuple(reverse_skyline_by_definition(case.dataset, case.query))
            assert by_def == expected, "oracles disagree (library bug)"
        report.trials += 1
        try:
            algo = factory(
                case.dataset, MemoryBudget(case.budget_pages), case.page_bytes
            )
            got = tuple(algo.run(case.query).record_ids)
        except Exception as exc:  # noqa: BLE001 - the point is to report it
            report.failures.append(
                VerificationFailure(case, expected, None, error=repr(exc))
            )
        else:
            if got != expected:
                report.failures.append(VerificationFailure(case, expected, got))
        if len(report.failures) >= max_failures:
            break
    return report


def verify_executor(
    *,
    trials: int = 50,
    seed: int = 0,
    pool_sizes: tuple[int, ...] = (1, 2, 4),
    cache_modes: tuple[bool, ...] = (False, True),
    plan_modes: tuple[bool, ...] = (False, True),
    batch_size: int = 6,
    max_failures: int = 5,
) -> VerificationReport:
    """Differential safety net for the concurrent batch executor.

    Replays every randomized trial through ``query_many`` — for each pool
    size, cache mode and planner mode — and asserts the per-query results
    are **bit-identical** to the sequential engine's answers on the same
    workload. Each trial's batch contains the workload query, random
    extras, and a deliberate duplicate so the cache and in-flight dedup
    paths are exercised on every run; ``plan_modes`` additionally routes
    the batch through the shared-scan planner and must not change a
    single answer.
    """
    if trials < 1:
        raise ExperimentError(f"trials must be >= 1, got {trials}")
    if batch_size < 2:
        raise ExperimentError(f"batch_size must be >= 2, got {batch_size}")
    from repro.engine import ReverseSkylineEngine
    from repro.exec.cache import ResultCache
    from repro.exec.executor import QueryExecutor

    report = VerificationReport()
    for t in range(trials):
        case = random_workload(seed + t)
        report.trials += 1
        rng = np.random.default_rng((seed + t) * 7919 + 1)
        cards = case.dataset.schema.cardinalities()
        queries = [case.query] + [
            tuple(int(rng.integers(0, c)) for c in cards)
            for _ in range(batch_size - 2)
        ]
        queries.append(case.query)  # duplicate → cache / dedup coverage
        engine = ReverseSkylineEngine(
            case.dataset, page_bytes=case.page_bytes, log_queries=False
        )
        expected = [tuple(engine.query(q).record_ids) for q in queries]
        for workers in pool_sizes:
            for cache_on in cache_modes:
                for plan_on in plan_modes:
                    executor = QueryExecutor(
                        engine,
                        pool="thread",
                        workers=workers,
                        cache=ResultCache() if cache_on else None,
                        plan=plan_on,
                    )
                    try:
                        batch = executor.run_batch(queries)
                        got = [tuple(r.record_ids) for r in batch.results]
                    except Exception as exc:  # noqa: BLE001 - the point is to report it
                        report.failures.append(
                            VerificationFailure(
                                case,
                                expected[0],
                                None,
                                error=(
                                    f"workers={workers}, cache={cache_on}, "
                                    f"plan={plan_on}: {exc!r}"
                                ),
                            )
                        )
                        continue
                    for want, have in zip(expected, got):
                        if want != have:
                            report.failures.append(
                                VerificationFailure(case, want, have)
                            )
                            break
        if len(report.failures) >= max_failures:
            break
    return report
