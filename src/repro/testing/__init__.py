"""Public verification toolkit for reverse-skyline implementations.

Public surface: :func:`verify_algorithm`, :func:`random_workload`,
:class:`WorkloadCase`, :class:`VerificationReport`,
:class:`VerificationFailure`.
"""

from repro.testing.verify import (
    VerificationFailure,
    VerificationReport,
    WorkloadCase,
    random_workload,
    verify_algorithm,
)

__all__ = [
    "VerificationFailure",
    "VerificationReport",
    "WorkloadCase",
    "random_workload",
    "verify_algorithm",
]
