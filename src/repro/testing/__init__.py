"""Public verification toolkit for reverse-skyline implementations.

Public surface: :func:`verify_algorithm`, :func:`verify_executor`,
:func:`verify_chaos_equivalence`, :func:`verify_sharded_equivalence`,
:func:`verify_index_equivalence`, :func:`random_workload`,
:class:`WorkloadCase`, :class:`VerificationReport`,
:class:`VerificationFailure`, :class:`ChaosReport`, :class:`ChaosFailure`.
"""

from repro.testing.chaos import (
    ChaosFailure,
    ChaosReport,
    verify_chaos_equivalence,
)
from repro.testing.differential import (
    verify_index_equivalence,
    verify_sharded_equivalence,
)
from repro.testing.maintenance import MaintReport, verify_maint_equivalence
from repro.testing.verify import (
    VerificationFailure,
    VerificationReport,
    WorkloadCase,
    random_workload,
    verify_algorithm,
    verify_executor,
)

__all__ = [
    "ChaosFailure",
    "ChaosReport",
    "MaintReport",
    "VerificationFailure",
    "VerificationReport",
    "WorkloadCase",
    "random_workload",
    "verify_algorithm",
    "verify_chaos_equivalence",
    "verify_executor",
    "verify_index_equivalence",
    "verify_maint_equivalence",
    "verify_sharded_equivalence",
]
