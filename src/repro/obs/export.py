"""Exporters: JSON snapshots and Prometheus text exposition.

Both exporters are pure functions over the picklable value objects
(:class:`~repro.obs.metrics.MetricsSnapshot`,
:class:`~repro.obs.trace.SpanRecord`), so anything that can be snapshot
can be shipped — to a file via the CLI (``repro-skyline metrics``,
``repro-skyline batch --trace``), to a scrape endpoint, or into a CI
artifact. Output is deterministic: series are emitted in sorted name
order and floats render via ``repr`` (shortest round-trip form).
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsSnapshot
from repro.obs.trace import span_tree

__all__ = [
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "trace_to_json",
    "render_trace",
]


def _fmt(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _series_with_label(key: str, extra: str) -> str:
    """Append one rendered label to a series name that may already carry
    a label set: ``x{a="b"}`` + ``le="1"`` -> ``x{a="b",le="1"}``."""
    if key.endswith("}"):
        return f"{key[:-1]},{extra}}}"
    return f"{key}{{{extra}}}"


def _suffixed(key: str, suffix: str) -> str:
    """Insert a name suffix before any label set: ``x{a="b"}`` + ``_sum``
    -> ``x_sum{a="b"}`` (the exposition convention for histograms)."""
    family, sep, rest = key.partition("{")
    return f"{family}{suffix}{sep}{rest}"


def _family_of(key: str) -> str:
    return key.partition("{")[0]


def snapshot_to_prometheus(snap: MetricsSnapshot) -> str:
    """The snapshot in Prometheus text exposition format (version 0.0.4).

    Histograms expand to cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``, per the exposition conventions.
    """
    lines: list[str] = []
    emitted_header: set[str] = set()

    def header(family: str, kind: str) -> None:
        if family in emitted_header:
            return
        emitted_header.add(family)
        help_text = snap.families.get(family, (kind, ""))[1]
        if help_text:
            lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kind}")

    for key in sorted(snap.counters):
        header(_family_of(key), "counter")
        lines.append(f"{key} {_fmt(snap.counters[key])}")
    for key in sorted(snap.gauges):
        header(_family_of(key), "gauge")
        lines.append(f"{key} {_fmt(snap.gauges[key])}")
    for key in sorted(snap.histograms):
        h = snap.histograms[key]
        family = _family_of(key)
        header(family, "histogram")
        for bound, cumulative in h.cumulative():
            le = "+Inf" if bound == float("inf") else _fmt(bound)
            series = _series_with_label(_suffixed(key, "_bucket"), f'le="{le}"')
            lines.append(f"{series} {cumulative}")
        lines.append(f"{_suffixed(key, '_sum')} {_fmt(h.sum)}")
        lines.append(f"{_suffixed(key, '_count')} {h.count}")
    return "\n".join(lines) + "\n"


def snapshot_to_json(snap: MetricsSnapshot, *, indent: int | None = 2) -> str:
    """The snapshot as a JSON document (sorted keys, stable)."""
    doc = {
        "counters": dict(sorted(snap.counters.items())),
        "gauges": dict(sorted(snap.gauges.items())),
        "histograms": {
            key: {
                "buckets": [
                    {"le": "+Inf" if b == float("inf") else b, "count": c}
                    for b, c in h.cumulative()
                ],
                "sum": h.sum,
                "count": h.count,
            }
            for key, h in sorted(snap.histograms.items())
        },
    }
    return json.dumps(doc, indent=indent, sort_keys=False)


def trace_to_json(records, *, indent: int | None = 2) -> str:
    """Span records as a JSON trace document (spans sorted by id)."""
    doc = {
        "spans": [
            {
                "id": r.span_id,
                "parent": r.parent_id,
                "name": r.name,
                "start_s": r.start_s,
                "duration_s": r.duration_s,
                "attrs": {k: v for k, v in r.attrs},
            }
            for r in sorted(records, key=lambda x: x.span_id)
        ]
    }
    return json.dumps(doc, indent=indent, default=str)


def render_trace(records, *, max_spans: int = 200) -> str:
    """A human-readable indented tree of a trace (for CLI/debug output)."""
    tree = span_tree(records)
    lines: list[str] = []

    def walk(parent: int | None, depth: int) -> None:
        for r in tree.get(parent, ()):
            if len(lines) >= max_spans:
                return
            attrs = "".join(f" {k}={v}" for k, v in r.attrs)
            lines.append(
                f"{'  ' * depth}{r.name} [{r.span_id}] "
                f"{r.duration_s * 1000:.2f}ms{attrs}"
            )
            walk(r.span_id, depth + 1)

    walk(None, 0)
    if len(lines) >= max_spans:
        lines.append(f"... ({len(list(records))} spans total)")
    return "\n".join(lines)
