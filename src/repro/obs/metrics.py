"""The metrics registry: counters, gauges and fixed-bucket histograms.

Production observability for the query stack (NMSLIB-style: the library
carries its own instrumentation rather than hoping callers add it). The
design constraints, in order:

1. **Cheap.** One lock per instrument, taken only on updates; the hot
   paths of the query stack guard every emission behind the module-level
   enabled flag in :mod:`repro.obs.hooks`, so a disabled build pays one
   attribute load + branch per hook site.
2. **Mergeable.** :class:`MetricsSnapshot` is a plain picklable value
   object; process-pool workers ship per-job snapshots back over the
   wire and :meth:`MetricsRegistry.merge` folds them in (sums commute,
   so the merged totals are deterministic under any worker schedule).
3. **Deterministic.** Snapshots iterate series in sorted name order and
   bucket bounds are fixed at registration, so two runs doing the same
   work export byte-identical text (timings aside).

Histograms use Prometheus ``le`` semantics: an observation equal to a
bucket's upper bound lands **in** that bucket; values above the last
bound fall into the implicit ``+Inf`` overflow bucket.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_COUNT_BUCKETS",
    "series_name",
]

#: Wall-time buckets (seconds) sized for pure-Python query latencies:
#: sub-millisecond cache hits up to multi-second scans.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)

#: Work-count buckets (checks, page IOs): decades.
DEFAULT_COUNT_BUCKETS = (10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)


def series_name(name: str, labels: dict | None) -> str:
    """Render ``name{k="v",...}`` with label keys sorted (deterministic)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotone counter (one series, labels already bound)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ReproError(f"counters are monotone; cannot add {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A settable instantaneous value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """A fixed-bucket histogram (Prometheus ``le`` semantics).

    ``bounds`` are the finite upper bounds, strictly increasing; one
    implicit ``+Inf`` overflow bucket is appended. Counts are stored
    per-bucket (non-cumulative) and cumulated only at export time.
    """

    __slots__ = ("bounds", "_lock", "_counts", "_sum")

    def __init__(self, bounds=DEFAULT_LATENCY_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ReproError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ReproError(f"histogram bounds must strictly increase: {bounds}")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left: value == bounds[i] lands in bucket i (le semantics);
        # value > bounds[-1] lands in the +Inf overflow bucket.
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value

    def snapshot(self) -> "HistogramSnapshot":
        with self._lock:
            return HistogramSnapshot(self.bounds, tuple(self._counts), self._sum)

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0


@dataclass(frozen=True)
class HistogramSnapshot:
    """Picklable value view of one histogram series."""

    bounds: tuple[float, ...]
    #: Per-bucket (non-cumulative) counts; ``len(bounds) + 1`` entries,
    #: the last being the ``+Inf`` overflow bucket.
    counts: tuple[int, ...]
    sum: float

    @property
    def count(self) -> int:
        return sum(self.counts)

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, self.counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def merged(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if other.bounds != self.bounds:
            raise ReproError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        return HistogramSnapshot(
            self.bounds,
            tuple(a + b for a, b in zip(self.counts, other.counts)),
            self.sum + other.sum,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time copy of every registered series.

    Plain picklable data: the wire format for process-pool workers and
    the input to the JSON / Prometheus exporters in
    :mod:`repro.obs.export`. Keys are rendered series names
    (``name{label="value"}``); ``families`` maps the bare family name to
    its ``(type, help)`` pair for exposition headers.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)
    families: dict[str, tuple[str, str]] = field(default_factory=dict)

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """The commutative sum of two snapshots (gauges: ``other`` wins)."""
        counters = dict(self.counters)
        for name, v in other.counters.items():
            counters[name] = counters.get(name, 0) + v
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, h in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = h if mine is None else mine.merged(h)
        families = dict(self.families)
        families.update(other.families)
        return MetricsSnapshot(counters, gauges, histograms, families)


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    One series per ``(name, labels)`` pair; re-registering an existing
    series returns the same instrument, while re-registering a name as a
    different *type* raises (a silent type flip would corrupt exports).
    ``snapshot`` / ``reset`` / ``merge`` give the batch executor its
    cross-process aggregation semantics.
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # series name -> (kind, instrument); family name -> (kind, help)
        self._series: dict[str, tuple[str, object]] = {}
        self._families: dict[str, tuple[str, str]] = {}

    # -- registration -------------------------------------------------------
    def _get_or_create(self, kind, name, help_text, labels, factory):
        key = series_name(name, labels)
        with self._lock:
            existing = self._series.get(key)
            if existing is not None:
                found_kind, instrument = existing
                if found_kind != kind:
                    raise ReproError(
                        f"metric {key!r} already registered as {found_kind}, "
                        f"not {kind}"
                    )
                return instrument
            family = self._families.get(name)
            if family is not None and family[0] != kind:
                raise ReproError(
                    f"metric family {name!r} already registered as "
                    f"{family[0]}, not {kind}"
                )
            instrument = factory()
            self._series[key] = (kind, instrument)
            if family is None or (help_text and not family[1]):
                self._families[name] = (kind, help_text)
            return instrument

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        return self._get_or_create("counter", name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        return self._get_or_create("gauge", name, help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets=DEFAULT_LATENCY_BUCKETS_S,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            "histogram", name, help_text, labels, lambda: Histogram(buckets)
        )

    # -- convenience emitters (the hook-site API) ---------------------------
    def inc(self, name: str, n: int = 1, **labels) -> None:
        self.counter(name, **labels).inc(n)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, *, buckets=None, **labels) -> None:
        if buckets is None:
            self.histogram(name, **labels).observe(value)
        else:
            self.histogram(name, buckets=buckets, **labels).observe(value)

    # -- snapshot / reset / merge ------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Copy every series (sorted by name, so exports are stable)."""
        with self._lock:
            series = sorted(self._series.items())
            families = dict(sorted(self._families.items()))
        snap = MetricsSnapshot(families=families)
        for key, (kind, instrument) in series:
            if kind == "counter":
                snap.counters[key] = instrument.value
            elif kind == "gauge":
                snap.gauges[key] = instrument.value
            else:
                snap.histograms[key] = instrument.snapshot()
        return snap

    def reset(self) -> None:
        """Zero every instrument, keeping registrations (and help text)."""
        with self._lock:
            instruments = [inst for _, inst in self._series.values()]
        for inst in instruments:
            inst._reset()

    def merge(self, snap: MetricsSnapshot | None) -> None:
        """Fold a worker's snapshot into this registry (counters and
        histogram buckets add; gauges take the snapshot's value)."""
        if snap is None:
            return
        for key, value in snap.counters.items():
            name, labels = _parse_series(key)
            self.counter(name, snap.families.get(name, ("", ""))[1], **labels).inc(
                value
            )
        for key, value in snap.gauges.items():
            name, labels = _parse_series(key)
            self.gauge(name, **labels).set(value)
        for key, h in snap.histograms.items():
            name, labels = _parse_series(key)
            mine = self.histogram(name, buckets=h.bounds, **labels)
            if mine.bounds != h.bounds:
                raise ReproError(
                    f"cannot merge {key!r}: bucket bounds differ "
                    f"({mine.bounds} vs {h.bounds})"
                )
            with mine._lock:
                for i, c in enumerate(h.counts):
                    mine._counts[i] += c
                mine._sum += h.sum


def _parse_series(key: str) -> tuple[str, dict]:
    """Invert :func:`series_name` (labels never contain ``{`` or ``,``
    in this codebase's metric catalogue)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        k, _, v = part.partition("=")
        labels[k] = v.strip('"')
    return name, labels
