"""Global observability state and the cheap hook-site API.

Every instrumented module (``core/base``, ``exec/executor``,
``exec/cache``, ``storage/disk``, ``faults/retry``) imports this module
once and guards each emission with::

    from repro.obs import hooks as _obs
    ...
    if _obs.enabled:
        _obs.inc("repro_...", ...)

``enabled`` is a plain module attribute, so a disabled hook site costs
one attribute load and one branch — nothing is allocated, no lock is
taken. :func:`span` additionally returns the shared
:data:`~repro.obs.trace.NULL_SPAN` when disabled, so ``with``-style
phase hooks are equally free.

State model
-----------
One process-global :class:`~repro.obs.metrics.MetricsRegistry` and one
process-global :class:`~repro.obs.trace.Tracer`. Batch jobs additionally
get a *per-job* tracer installed as this thread's span sink
(:func:`begin_job`), so concurrently executing jobs never interleave
their spans; the executor grafts the per-job records back under the
batch span (:func:`adopt_job_trace`) with deterministic ids.

Enabling/disabling is idempotent and cheap; it never touches query
semantics — the differential and chaos harnesses assert instrumented
runs are bit-identical to plain ones.
"""

from __future__ import annotations

from contextvars import ContextVar

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.trace import NULL_SPAN, SpanRecord, Tracer

__all__ = [
    "enabled",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "registry",
    "tracer",
    "snapshot",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "begin_job",
    "end_job",
    "adopt_job_trace",
    "record_query",
    "record_io",
]

#: THE module-level enabled flag. Hot paths read it directly.
enabled: bool = False

_REGISTRY = MetricsRegistry()
_TRACER = Tracer()

#: The span sink for the current job, when a batch job is executing in
#: this thread/process (see :func:`begin_job`); ``None`` -> global tracer.
_JOB_SINK: ContextVar[Tracer | None] = ContextVar("repro_obs_job_sink", default=None)


def enable(*, reset_state: bool = False) -> None:
    """Turn observability on (idempotent). ``reset_state=True`` also
    zeroes the registry and clears collected spans first, giving a clean
    capture window (what :class:`repro.obs.profile.QueryProfiler` does)."""
    global enabled
    if reset_state:
        reset()
    enabled = True


def disable() -> None:
    global enabled
    enabled = False


def is_enabled() -> bool:
    return enabled


def reset() -> None:
    """Zero every metric and drop every collected span."""
    _REGISTRY.reset()
    _TRACER.reset()


def registry() -> MetricsRegistry:
    return _REGISTRY


def tracer() -> Tracer:
    return _TRACER


def snapshot() -> MetricsSnapshot:
    return _REGISTRY.snapshot()


# -- spans ------------------------------------------------------------------
def span(name: str, **attrs):
    """Open a span under the current context (job sink if inside a batch
    job, else the global tracer); the shared null span when disabled."""
    if not enabled:
        return NULL_SPAN
    sink = _JOB_SINK.get() or _TRACER
    return sink.span(name, **attrs)


def begin_job(name: str, **attrs):
    """Start an isolated trace capture for one batch job in this thread.

    Creates a private tracer, installs it as this thread's span sink,
    and opens the job's root span (parent ``None`` — the executor
    re-parents the whole subtree under the batch span afterwards).
    Returns an opaque handle for :func:`end_job`, or ``None`` when
    observability is disabled.
    """
    if not enabled:
        return None
    job_tracer = Tracer()
    token = _JOB_SINK.set(job_tracer)
    root = job_tracer.span(name, parent=None, **attrs)
    root.__enter__()
    return (job_tracer, root, token)


def end_job(handle) -> tuple[SpanRecord, ...]:
    """Close a job capture started by :func:`begin_job`; returns the
    job's finished spans (picklable, ids local to the job)."""
    if handle is None:
        return ()
    job_tracer, root, token = handle
    root.__exit__(None, None, None)
    _JOB_SINK.reset(token)
    return job_tracer.records()


def adopt_job_trace(records, *, parent_id: int | None) -> None:
    """Graft one job's span records into the global tracer under
    ``parent_id`` (ids re-based deterministically; see
    :func:`repro.obs.trace.graft`)."""
    if records:
        _TRACER.adopt(records, parent_id=parent_id)


# -- metrics ----------------------------------------------------------------
def inc(name: str, n: int = 1, **labels) -> None:
    _REGISTRY.inc(name, n, **labels)


def observe(name: str, value: float, *, buckets=None, **labels) -> None:
    _REGISTRY.observe(name, value, buckets=buckets, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    _REGISTRY.set_gauge(name, value, **labels)


# -- aggregate flush points (called once per query / per disk) --------------
def record_query(algorithm: str, stats) -> None:
    """Flush one finished algorithm run's :class:`~repro.core.base.CostStats`
    into the registry (called from ``ReverseSkylineAlgorithm.run``; the
    domination-check and phase counters were accumulated lock-free in the
    per-query ``CostStats``, so the hot loops pay nothing extra)."""
    r = _REGISTRY
    r.inc("repro_queries_total", 1, algorithm=algorithm)
    r.inc("repro_domination_checks_total", stats.checks_phase1, phase="1")
    r.inc("repro_domination_checks_total", stats.checks_phase2, phase="2")
    r.inc("repro_pruner_tests_total", stats.pruner_tests)
    r.observe("repro_query_wall_seconds", stats.wall_time_s)
    r.observe(
        "repro_query_checks", float(stats.checks), buckets=DEFAULT_COUNT_BUCKETS
    )


def record_io(io) -> None:
    """Flush one disk's :class:`~repro.storage.iostats.IoStats` into the
    registry (called from ``DiskSimulator.close`` — once per staged
    disk, never per page access)."""
    r = _REGISTRY
    r.inc("repro_page_io_total", io.sequential_reads, kind="sequential_read")
    r.inc("repro_page_io_total", io.random_reads, kind="random_read")
    r.inc("repro_page_io_total", io.sequential_writes, kind="sequential_write")
    r.inc("repro_page_io_total", io.random_writes, kind="random_write")
    r.inc("repro_io_retries_total", io.read_retries, op="read")
    r.inc("repro_io_retries_total", io.write_retries, op="write")
    r.inc("repro_io_faults_total", io.faults_seen)
    # Uncharged prepare-time reads: separate series on purpose, so the
    # charged repro_page_io_total stays the paper's logical IO metric.
    r.inc("repro_page_peeks_total", io.peek_reads)
