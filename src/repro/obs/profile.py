"""Per-phase query profiling built on the tracing hooks.

:class:`QueryProfiler` is the "where did the time go" facade: a context
manager that enables observability for its body (restoring the previous
state after), then answers with the captured trace, the metrics
snapshot, and a per-phase wall-time attribution computed from the span
tree — the breakdown the PM-tree evaluation methodology reports per
pruning stage, generalised over the whole engine → executor → algorithm
→ storage path.

    with QueryProfiler() as prof:
        engine.query_many(queries, pool="thread", workers=4)
    for row in prof.breakdown():
        print(row.name, row.count, f"{row.total_s * 1000:.1f}ms")

Attribution uses *self time*: a span's duration minus its children's,
so ``algorithm.run`` does not double-count the phases nested inside it
and the shares sum to ~100% of traced time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import hooks
from repro.obs.metrics import MetricsSnapshot
from repro.obs.trace import SpanRecord, span_tree

__all__ = ["PhaseStat", "QueryProfiler", "phase_breakdown"]


@dataclass(frozen=True)
class PhaseStat:
    """Aggregate wall-time attribution for one span name."""

    name: str
    count: int
    total_s: float
    #: Duration minus children's durations, summed over spans of this name.
    self_s: float

    @property
    def mean_ms(self) -> float:
        return self.total_s * 1000 / self.count if self.count else 0.0


def phase_breakdown(records) -> list[PhaseStat]:
    """Group a trace's spans by name into per-phase totals.

    Returns one :class:`PhaseStat` per span name, ordered by descending
    self time (ties broken by name, so output is deterministic).
    """
    children = span_tree(records)
    total: dict[str, float] = {}
    self_time: dict[str, float] = {}
    count: dict[str, int] = {}
    for r in records:
        nested = sum(c.duration_s for c in children.get(r.span_id, ()))
        total[r.name] = total.get(r.name, 0.0) + r.duration_s
        self_time[r.name] = self_time.get(r.name, 0.0) + max(
            0.0, r.duration_s - nested
        )
        count[r.name] = count.get(r.name, 0) + 1
    rows = [
        PhaseStat(name, count[name], total[name], self_time[name])
        for name in total
    ]
    rows.sort(key=lambda s: (-s.self_s, s.name))
    return rows


class QueryProfiler:
    """Enable observability for a block and capture what it emitted.

    Parameters
    ----------
    reset:
        Zero the registry and drop prior spans on entry (default), so
        the capture covers exactly the body. Pass ``False`` to
        accumulate across several profiled blocks.
    """

    def __init__(self, *, reset: bool = True) -> None:
        self.reset = reset
        self._was_enabled = False
        self.trace: tuple[SpanRecord, ...] = ()
        self.snapshot: MetricsSnapshot | None = None

    def __enter__(self) -> "QueryProfiler":
        self._was_enabled = hooks.is_enabled()
        hooks.enable(reset_state=self.reset)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.trace = hooks.tracer().records()
        self.snapshot = hooks.snapshot()
        if not self._was_enabled:
            hooks.disable()

    def breakdown(self) -> list[PhaseStat]:
        """Per-phase wall-time attribution of the captured trace."""
        return phase_breakdown(self.trace)
