"""repro.obs — observability: metrics, structured tracing, profiling.

The production-visibility subsystem for the query stack. Three layers:

- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms; lock-protected, snapshot/reset
  semantics, and snapshots merge across process-pool workers.
- :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` structured
  tracing with monotonic timestamps and parent/child nesting; the batch
  executor propagates trace context through its serial/thread/process
  pools so one batch yields one coherent trace tree.
- :mod:`repro.obs.profile` — :class:`QueryProfiler`, the per-phase
  "where did the time go" view over a captured trace.

Everything is **off by default**: the hook points threaded through
``repro.core``, ``repro.exec``, ``repro.storage`` and ``repro.faults``
guard on :data:`repro.obs.hooks.enabled` (one attribute load + branch
when disabled) and never alter query results — instrumented runs are
bit-identical to plain ones (asserted by ``benchmarks/test_ext_obs.py``
and ``tests/test_obs.py``).

Quickstart::

    from repro.obs import QueryProfiler, snapshot_to_prometheus

    with QueryProfiler() as prof:
        engine.query_many(queries, pool="thread", workers=4)
    print(snapshot_to_prometheus(prof.snapshot))   # metrics
    for phase in prof.breakdown():                 # time attribution
        print(phase.name, phase.count, phase.self_s)

See ``docs/observability.md`` for the metric catalogue and the span
taxonomy.
"""

from repro.obs.export import (
    render_trace,
    snapshot_to_json,
    snapshot_to_prometheus,
    trace_to_json,
)
from repro.obs.hooks import (
    disable,
    enable,
    is_enabled,
    registry,
    reset,
    snapshot,
    tracer,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.profile import PhaseStat, QueryProfiler, phase_breakdown
from repro.obs.trace import Span, SpanRecord, Tracer, graft, span_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PhaseStat",
    "QueryProfiler",
    "Span",
    "SpanRecord",
    "Tracer",
    "disable",
    "enable",
    "graft",
    "is_enabled",
    "phase_breakdown",
    "registry",
    "render_trace",
    "reset",
    "snapshot",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "span_tree",
    "trace_to_json",
    "tracer",
]
