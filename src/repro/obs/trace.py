"""Structured tracing: spans with monotonic timestamps and parent links.

A :class:`Span` covers one timed region (a batch, a query, an algorithm
phase); a :class:`Tracer` collects finished spans. Nesting uses a
:mod:`contextvars` context variable, so spans opened anywhere below a
parent — including in code that has never heard of the tracer, like the
algorithm phase hooks in :mod:`repro.core` — attach to the innermost
open span *of the same thread*.

Pool propagation is explicit, not ambient: thread and process pools do
not inherit the submitting thread's context, so the batch executor gives
every job its own private :class:`Tracer` (installed as the thread's
span sink via :func:`repro.obs.hooks.begin_job`), ships the finished
records back with the job outcome — they are plain picklable tuples —
and grafts them under the batch span afterwards with :func:`graft`.
Grafting re-bases span ids deterministically in job order, so one batch
yields one coherent trace tree with identical ids whatever pool ran it.

Timestamps are ``time.perf_counter`` (the same clock as
:class:`repro.core.base.Stopwatch`), monotonic within a process but not
comparable across processes; cross-process spans keep their *durations*
and their structure, which is what per-phase attribution needs.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, replace

__all__ = ["SpanRecord", "Span", "Tracer", "graft", "span_tree", "NULL_SPAN"]

#: The innermost open span id in this thread's context (None at top level).
_CURRENT_SPAN: ContextVar[int | None] = ContextVar("repro_obs_span", default=None)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span — plain picklable data (the wire/export format)."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def attr(self, key: str, default=None):
        for k, v in self.attrs:
            if k == key:
                return v
        return default


class Span:
    """An open span; use as a context manager (annotate before exit)."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "start_s", "_attrs", "_token")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int | None, name: str) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = time.perf_counter()
        self._attrs: list[tuple[str, object]] = []
        self._token = None

    def annotate(self, key: str, value) -> "Span":
        self._attrs.append((key, value))
        return self

    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._attrs.append(("error", exc_type.__name__))
        end_s = time.perf_counter()
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self._tracer._finish(
            SpanRecord(
                self.span_id,
                self.parent_id,
                self.name,
                self.start_s,
                end_s,
                tuple(self._attrs),
            )
        )


class _NullSpan:
    """The do-nothing span returned when observability is disabled; a
    single shared instance, so a disabled hook site allocates nothing."""

    __slots__ = ()

    def annotate(self, key: str, value) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; allocates ids monotonically.

    Ids are assigned at span *creation* under a lock. Within one thread
    of execution they increase in program order, which is what
    :func:`graft` relies on to renumber worker spans deterministically.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_id = 0

    def span(self, name: str, *, parent: int | None = -1, **attrs) -> Span:
        """Open a span. ``parent`` defaults to the current context span;
        pass ``None`` to force a root."""
        if parent == -1:
            parent = _CURRENT_SPAN.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        s = Span(self, span_id, parent, name)
        for k, v in attrs.items():
            s.annotate(k, v)
        return s

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def adopt(self, records, *, parent_id: int | None) -> None:
        """Graft foreign (e.g. worker-produced) span records into this
        tracer under ``parent_id``, re-basing their ids onto fresh ids
        from this tracer (see :func:`graft`)."""
        if not records:
            return
        with self._lock:
            base = self._next_id
            grafted = graft(records, parent_id=parent_id, base_id=base)
            self._next_id = base + len(grafted)
            self._records.extend(grafted)

    def records(self) -> tuple[SpanRecord, ...]:
        """Finished spans, sorted by id (stable export order)."""
        with self._lock:
            return tuple(sorted(self._records, key=lambda r: r.span_id))

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._next_id = 0


def graft(
    records, *, parent_id: int | None, base_id: int
) -> list[SpanRecord]:
    """Re-base a self-contained span forest onto new ids.

    ``records`` come from a private per-job tracer (ids 0..n in that
    job's creation order). Old ids map to ``base_id + rank`` in old-id
    order — deterministic, since creation order within a job is the
    job's own sequential execution order — and roots (``parent_id is
    None``) are re-parented onto ``parent_id``. Returns the grafted
    records sorted by new id.
    """
    by_old = sorted(records, key=lambda r: r.span_id)
    id_map = {r.span_id: base_id + rank for rank, r in enumerate(by_old)}
    out = []
    for r in by_old:
        out.append(
            replace(
                r,
                span_id=id_map[r.span_id],
                parent_id=(
                    parent_id if r.parent_id is None else id_map[r.parent_id]
                ),
            )
        )
    return out


def span_tree(records) -> dict[int | None, list[SpanRecord]]:
    """Index records as ``parent_id -> [children sorted by id]``; the
    ``None`` key holds the roots."""
    tree: dict[int | None, list[SpanRecord]] = {}
    for r in sorted(records, key=lambda x: x.span_id):
        tree.setdefault(r.parent_id, []).append(r)
    return tree
