"""The maintenance write path: delta AL-Trees, tombstones, compaction.

A :class:`MaintStore` owns a *base* :class:`~repro.data.dataset.Dataset`
(the compacted, laid-out, plan-cached state) plus the mutations applied
since the last compaction:

- **inserts** live in small delta AL-Trees, size-tiered LSM-style: every
  applied batch starts a fresh tier; adjacent tiers merge
  (:meth:`repro.altree.ALTree.merge_from`) whenever the older one is no
  more than twice the newer, so tier count stays logarithmic in delta
  size and merges always move the smaller tree.
- **deletes** are tombstones. Deleting a base record marks its stable
  id; deleting a not-yet-compacted insert removes it from its delta tier
  (counted in the tier's ``deleted_count`` so compaction triggers see
  churn, not just net growth).

Records are addressed by **stable ids**: the id a record gets on insert
and keeps across compactions (base records of the seed dataset get ids
``0..n-1``). Readers see the store through :meth:`snapshot`, which
returns an immutable :class:`~repro.core.overlay.Overlay` in the *base
position* coordinate space the scan algorithms use, plus the translation
tables back to stable ids.

Compaction folds deltas and tombstones into a new base dataset in one
atomic swap: the new record list, id table and position index are built
completely off to the side, then published by plain attribute
assignment under the lock — a crash (or injected fault) mid-build leaves
the store exactly as it was, still answering correctly from the old
base + deltas.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.altree.tree import ALTree
from repro.core.overlay import Overlay
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError
from repro.sorting.keys import ascending_cardinality_order

__all__ = ["MaintStore", "UpdateResult"]

#: Never compact below this much churn (delta records + tombstones).
DEFAULT_COMPACT_MIN = 64
#: ... or below this fraction of the base size, whichever is larger.
DEFAULT_COMPACT_FRACTION = 0.25


@dataclass(frozen=True)
class UpdateResult:
    """What one :meth:`MaintStore.apply` batch did."""

    #: The epoch the store advanced to.
    epoch: int
    #: Stable ids assigned to the batch's inserts, in input order.
    inserted: tuple[int, ...]
    #: Stable ids the batch actually deleted, in input order.
    deleted: tuple[int, ...]
    #: Whether this batch tripped a compaction.
    compacted: bool
    #: Uncompacted insert count after the batch.
    delta_records: int
    #: Base tombstone count after the batch.
    tombstones: int


class MaintStore:
    """Base dataset + delta AL-Tree tiers + tombstones, under one lock.

    Parameters
    ----------
    dataset:
        The seed base. Its records get stable ids ``0..n-1``.
    compact_fraction / compact_min:
        A batch triggers compaction when total churn (delta records +
        tombstones + deletes absorbed by delta tiers) reaches
        ``max(compact_min, compact_fraction * len(base))``. Set
        ``compact_min`` very large (or call only :meth:`compact`
        explicitly) to disable automatic compaction — pool workers do
        exactly that, since the parent drives their lifecycle.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        compact_fraction: float = DEFAULT_COMPACT_FRACTION,
        compact_min: int = DEFAULT_COMPACT_MIN,
    ) -> None:
        self.base = dataset
        self.compact_fraction = float(compact_fraction)
        self.compact_min = int(compact_min)
        #: ``base_ids[p]`` is the stable id of the base record at position
        #: ``p`` — identity for the seed base, permuted after compactions.
        self.base_ids: tuple[int, ...] = tuple(range(len(dataset)))
        self._pos_of: dict[int, int] = {sid: p for p, sid in enumerate(self.base_ids)}
        self._next_id = len(dataset)
        #: Delta trees share one attribute order so tiers can merge.
        self._delta_order = ascending_cardinality_order(dataset.schema, dataset)
        self._tiers: list[ALTree] = []
        self._delta: dict[int, tuple] = {}  # stable id -> values, uncompacted inserts
        self._tomb: set[int] = set()  # stable ids of deleted *base* records
        #: Deletes absorbed by delta tiers since the last compaction
        #: (tombstones cover base deletes only; churn needs both).
        self._delta_deletes = 0
        self.epoch = 0
        self.compactions = 0
        self.tier_merges = 0
        self._lock = threading.RLock()
        #: Chaos-test injection point: when set, called after the new
        #: base is fully built but before it is published — raising there
        #: simulates a crash mid-compaction, which must leave the store
        #: untouched (exercised by verify_maint_equivalence).
        self._crash_hook = None

    # -- write path ----------------------------------------------------------
    def apply(
        self,
        inserts: Iterable[Sequence] = (),
        deletes: Iterable[int] = (),
    ) -> UpdateResult:
        """Apply one batch of mutations; bumps the epoch, may compact.

        ``inserts`` are record value tuples (schema-validated);
        ``deletes`` are stable ids of live records. Deleting an unknown
        or already-deleted id raises :class:`~repro.errors.AlgorithmError`
        with the store unchanged (ids are validated before any state
        mutates, so a bad batch is a no-op).
        """
        ins = [tuple(v) for v in inserts]
        dels = [int(d) for d in deletes]
        for values in ins:
            self.base.schema.validate_record(values)
        with self._lock:
            for sid in dels:
                if sid in self._tomb or (
                    sid not in self._delta and sid not in self._pos_of
                ):
                    raise AlgorithmError(
                        f"delete of unknown or already-deleted stable id {sid}"
                    )
            if len(set(dels)) != len(dels):
                raise AlgorithmError("duplicate stable id in delete batch")
            deleted: list[int] = []
            for sid in dels:
                values = self._delta.pop(sid, None)
                if values is not None:
                    # An insert dying before it ever reached the base:
                    # remove it from whichever tier holds it.
                    for tier in self._tiers:
                        if tier.delete(sid, values):
                            break
                    self._delta_deletes += 1
                    self._tiers = [t for t in self._tiers if len(t)]
                else:
                    self._tomb.add(sid)
                deleted.append(sid)
            inserted: list[int] = []
            if ins:
                tier = ALTree(self._delta_order)
                for values in ins:
                    sid = self._next_id
                    self._next_id += 1
                    self._delta[sid] = values
                    tier.insert(sid, values)
                    inserted.append(sid)
                self._tiers.append(tier)
                # Size-tiered merge: fold the older neighbour in while it
                # is not more than twice the newer tier, keeping tiers
                # geometrically spaced and merges small-into-large.
                while (
                    len(self._tiers) >= 2
                    and len(self._tiers[-2]) <= 2 * len(self._tiers[-1])
                ):
                    small = self._tiers.pop(-2)
                    if len(small) > len(self._tiers[-1]):
                        small, self._tiers[-1] = self._tiers[-1], small
                    self._tiers[-1].merge_from(small)
                    self.tier_merges += 1
            self.epoch += 1
            compacted = False
            if self._churn() >= self._compact_threshold():
                self._compact_locked()
                compacted = True
            return UpdateResult(
                epoch=self.epoch,
                inserted=tuple(inserted),
                deleted=tuple(deleted),
                compacted=compacted,
                delta_records=len(self._delta),
                tombstones=len(self._tomb),
            )

    def _churn(self) -> int:
        return len(self._delta) + len(self._tomb) + self._delta_deletes

    def _compact_threshold(self) -> int:
        return max(self.compact_min, int(self.compact_fraction * len(self.base)))

    # -- compaction ----------------------------------------------------------
    def compact(self) -> bool:
        """Fold deltas and tombstones into a new base now. Returns False
        when there is nothing to fold."""
        with self._lock:
            if not self._delta and not self._tomb:
                self._delta_deletes = 0
                return False
            self._compact_locked()
            return True

    def _compact_locked(self) -> None:
        # Build the entire new state off to the side; publish only by the
        # final plain assignments. An exception anywhere in the build
        # leaves the store untouched and still correct (crash safety —
        # exercised by the chaos suite's crash-mid-compaction runs).
        new_records: list[tuple] = []
        new_ids: list[int] = []
        for pos, sid in enumerate(self.base_ids):
            if sid not in self._tomb:
                new_records.append(self.base.records[pos])
                new_ids.append(sid)
        for sid in sorted(self._delta):
            new_records.append(self._delta[sid])
            new_ids.append(sid)
        new_base = self.base.with_records(new_records)
        ids = tuple(new_ids)
        pos_of = {sid: p for p, sid in enumerate(ids)}
        if self._crash_hook is not None:
            self._crash_hook()
        self.base = new_base
        self.base_ids = ids
        self._pos_of = pos_of
        self._tiers = []
        self._delta = {}
        self._tomb = set()
        self._delta_deletes = 0
        self.compactions += 1

    # -- read-side snapshots -------------------------------------------------
    def snapshot(self) -> tuple[Overlay, Dataset, tuple[int, ...], tuple[int, ...]]:
        """One consistent ``(overlay, base, base_ids, delta_sids)`` view.

        The overlay is in base-position coordinates (entry ids are
        ``len(base) + j`` for the ``j``-th uncompacted insert in stable-id
        order; tombstones are base *positions*); ``base_ids``/``delta_sids``
        translate scan result ids back to stable ids. Everything returned
        is immutable, so later writes never disturb a taken snapshot.
        """
        with self._lock:
            n = len(self.base)
            delta_sids = tuple(sorted(self._delta))
            entries = tuple(
                (n + j, self._delta[sid]) for j, sid in enumerate(delta_sids)
            )
            tombstones = frozenset(self._pos_of[sid] for sid in self._tomb)
            overlay = Overlay(entries=entries, tombstones=tombstones, epoch=self.epoch)
            return overlay, self.base, self.base_ids, delta_sids

    def live_entries(self) -> list[tuple[int, tuple]]:
        """All live ``(stable_id, values)`` pairs — the from-scratch
        rebuild oracle's input (and the equivalence harness's ground
        truth), in stable-id order."""
        with self._lock:
            entries = [
                (sid, self.base.records[pos])
                for pos, sid in enumerate(self.base_ids)
                if sid not in self._tomb
            ]
            entries.extend(sorted(self._delta.items()))
        entries.sort()
        return entries

    @property
    def delta_records(self) -> int:
        with self._lock:
            return len(self._delta)

    @property
    def tombstone_count(self) -> int:
        with self._lock:
            return len(self._tomb)

    def stats(self) -> dict:
        with self._lock:
            return {
                "epoch": self.epoch,
                "base_records": len(self.base),
                "delta_records": len(self._delta),
                "tombstones": len(self._tomb),
                "delta_tiers": len(self._tiers),
                "tier_sizes": [len(t) for t in self._tiers],
                "tier_merges": self.tier_merges,
                "compactions": self.compactions,
                "compact_threshold": self._compact_threshold(),
            }

    # -- worker synchronisation ----------------------------------------------
    def wire_state(self) -> dict:
        """Picklable delta state for pool workers: deltas and tombstones
        are small by design (compaction bounds them), the base travels
        separately (shm manifest or the fork snapshot)."""
        with self._lock:
            ids = self.base_ids
            return {
                "epoch": self.epoch,
                "deltas": sorted(self._delta.items()),
                "tombstones": sorted(self._tomb),
                # After a compaction the base order no longer matches
                # 0..n-1; a worker engine built fresh over the shipped
                # base must adopt this table or it translates scan
                # positions to the wrong stable ids. None = identity.
                "base_ids": ids if ids != tuple(range(len(ids))) else None,
            }

    def install_wire_state(self, blob: dict) -> bool:
        """Adopt a :meth:`wire_state` snapshot wholesale (worker side).

        The receiving store must hold the same base the blob's deltas
        were taken against. Returns True when the epoch advanced (stale
        or duplicate blobs are ignored, so re-delivery is harmless).
        """
        epoch = int(blob["epoch"])
        with self._lock:
            if epoch <= self.epoch:
                return False
            base_ids = blob.get("base_ids")
            if base_ids is not None:
                base_ids = tuple(int(i) for i in base_ids)
                if len(base_ids) != len(self.base):
                    raise AlgorithmError(
                        f"wire base_ids cover {len(base_ids)} records but the "
                        f"worker base holds {len(self.base)} — out of sync"
                    )
                self.base_ids = base_ids
                self._pos_of = {sid: p for p, sid in enumerate(base_ids)}
                if base_ids:
                    self._next_id = max(self._next_id, max(base_ids) + 1)
            self._delta = {int(sid): tuple(v) for sid, v in blob["deltas"]}
            self._tomb = {int(sid) for sid in blob["tombstones"]}
            for sid in self._tomb:
                if sid not in self._pos_of:
                    raise AlgorithmError(
                        f"wire tombstone {sid} is not a base record here — "
                        "worker base is out of sync with the parent"
                    )
            tier = ALTree(self._delta_order)
            for sid, values in self._delta.items():
                tier.insert(sid, values)
            self._tiers = [tier] if len(tier) else []
            self._delta_deletes = 0
            if self._delta:
                self._next_id = max(self._next_id, max(self._delta) + 1)
            self.epoch = epoch
            return True
