"""A :class:`~repro.engine.ReverseSkylineEngine` over a mutating dataset.

:class:`MaintainedEngine` answers reverse-skyline queries over the
logical union ``base ⊎ deltas ⊖ tombstones`` held by a
:class:`~repro.maint.store.MaintStore`, bit-identically to an engine
rebuilt from scratch over the live records (pinned by
:func:`repro.testing.verify_maint_equivalence`).

Epoch discipline — updates never quiesce readers
------------------------------------------------
All read-side state for one store epoch lives in an immutable
``_EpochContext``: the overlay snapshot, the stable-id translation
tables, and the prepared (overlay-carrying) algorithm instances for that
epoch. :meth:`apply_updates` builds the next context off to the side and
publishes it with a single attribute assignment — queries already
executing keep the context they started with and finish against the
pre-update epoch; new queries see the new one. Nothing blocks on
anything.

Cache discipline — surgical, not stop-the-world
-----------------------------------------------
- **Result cache**: keys embed :meth:`layout_fingerprint`, which is the
  base fingerprint qualified with the epoch (``…#e7``), so entries from
  different epochs can never collide. Each update bumps the cache
  version too, so a result computed against the pre-update epoch but
  settled after it cannot be stored under a post-update key.
- **Plan cache**: plan keys embed the *base* fingerprint only. Update
  epochs therefore invalidate **nothing** — the cached phase-1/scan
  plans replay unchanged against the base while delta records ride the
  overlay appendix. Only a compaction (which rewrites the base) drops
  plans, and only those of the compacted base's layouts
  (:meth:`~repro.kernels.plancache.PlanCache.invalidate_fingerprint`);
  plans of other datasets in the process stay warm.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Sequence
from dataclasses import replace

from repro.core.base import RSResult, Stopwatch
from repro.core.registry import get_algorithm, make_algorithm
from repro.core.trs import TRS
from repro.engine import ReverseSkylineEngine
from repro.errors import AlgorithmError
from repro.kernels import resolve_algorithm
from repro.kernels.plancache import plan_cache, plan_fingerprint
from repro.maint.store import (
    DEFAULT_COMPACT_FRACTION,
    DEFAULT_COMPACT_MIN,
    MaintStore,
    UpdateResult,
)
from repro.obs import hooks as _obs
from repro.storage.disk import DiskSimulator

__all__ = ["MaintainedEngine"]


class _EpochContext:
    """Everything a reader needs for one store epoch, immutable once
    published (the algorithms dict only ever gains entries, under the
    engine lock, and each entry is itself read-only during ``run``)."""

    __slots__ = ("algorithms", "base", "base_ids", "delta_sids", "epoch", "overlay", "values_by_sid")

    def __init__(self, *, overlay, base, base_ids, delta_sids, epoch) -> None:
        self.overlay = overlay  # None when the epoch has no pending mutations
        self.base = base
        self.base_ids = base_ids
        self.delta_sids = delta_sids
        self.epoch = epoch
        self.algorithms: dict = {}  # (name, recall_target) -> prepared instance
        self.values_by_sid: dict | None = None  # lazy, for `where` filters


class MaintainedEngine(ReverseSkylineEngine):
    """An engine whose dataset absorbs inserts and deletes in place.

    Supports the TRS family (``TRS``/``VectorTRS``/``ITRS``) for
    ``kind="query"`` reverse skylines; skyband, subset and influence
    queries require a compacted, static base — call :meth:`compact` and
    open a plain engine for those. Sharding is likewise unsupported.

    Results report **stable ids** (see :class:`~repro.maint.MaintStore`),
    not base positions — the ids survive compactions, so monitoring and
    caching layers can compare results across the dataset's lifetime.
    """

    def __init__(
        self,
        dataset=None,
        *,
        store: MaintStore | None = None,
        compact_fraction: float = DEFAULT_COMPACT_FRACTION,
        compact_min: int = DEFAULT_COMPACT_MIN,
        **kwargs,
    ) -> None:
        if kwargs.get("shards") is not None:
            raise AlgorithmError(
                "maintained engines do not shard; compact() and open a "
                "plain engine with shards= for scatter-gather"
            )
        kwargs.pop("shards", None)
        if store is None:
            if dataset is None:
                raise AlgorithmError("MaintainedEngine needs a dataset or a store")
            store = MaintStore(
                dataset,
                compact_fraction=compact_fraction,
                compact_min=compact_min,
            )
        super().__init__(store.base, **kwargs)
        self.store = store
        #: Tells the batch planner (repro.exec) never to group queries on
        #: this engine into shared scans: shared scans answer in base
        #: positions and know nothing of overlays or stable ids.
        self.maint_active = True
        #: Serialises writers (apply_updates / compact / sync); readers
        #: never take it.
        self._maint_lock = threading.RLock()
        #: Base layouts by algorithm name, reused across epochs so every
        #: epoch's instances share one physical order — and therefore one
        #: plan fingerprint, which is what lets the plan cache serve
        #: epoch N+1 with the artifacts built for epoch 0.
        self._base_layouts: dict[str, list] = {}
        #: Content hashes of those layouts, memoised for the same reason:
        #: the base is immutable between compactions, so hashing it once
        #: per engine (not once per epoch instance) keeps the first query
        #: of every epoch off the full-dataset hash.
        self._base_fps: dict[str, str] = {}
        #: Staged page images of those layouts (codec, pages, count):
        #: the data file every query stages is identical across epochs,
        #: so the packed pages are built once per engine and seeded into
        #: each epoch instance's ``_staged_pages`` memo.
        self._base_staged: dict[str, tuple] = {}
        self.plans_invalidated_total = 0
        self.plans_retained_total = 0
        self._epoch_ctx = self._build_ctx()

    # -- epoch machinery -----------------------------------------------------
    def _build_ctx(self) -> _EpochContext:
        overlay, base, base_ids, delta_sids = self.store.snapshot()
        return _EpochContext(
            overlay=None if overlay.empty else overlay,
            base=base,
            base_ids=base_ids,
            delta_sids=delta_sids,
            epoch=overlay.epoch,
        )

    def _ctx_algorithm(self, ctx: _EpochContext, name: str, recall_target=None):
        key = (name, recall_target)
        algo = ctx.algorithms.get(key)
        if algo is None:
            with self._lock:
                algo = ctx.algorithms.get(key)
                if algo is None:
                    algo = self._build_overlay_algorithm(ctx, name, recall_target)
                    ctx.algorithms[key] = algo
        return algo

    def _build_overlay_algorithm(self, ctx: _EpochContext, name: str, recall_target):
        resolved = resolve_algorithm(name, self.backend, ctx.base)
        cls = get_algorithm(resolved)
        if not (isinstance(cls, type) and issubclass(cls, TRS)):
            raise AlgorithmError(
                f"maintained engines support the TRS family "
                f"(TRS/VectorTRS/ITRS), not {name!r}"
            )
        kwargs = {}
        rt = recall_target if recall_target is not None else self.recall_target
        if rt is not None:
            if not getattr(cls, "accepts_index", False):
                raise AlgorithmError(
                    f"recall_target needs an index-capable algorithm, not {name!r}"
                )
            kwargs["recall_target"] = rt
        algo = make_algorithm(
            name,
            ctx.base,
            backend=self.backend,
            memory_fraction=self.memory_fraction,
            page_bytes=self.page_bytes,
            overlay=ctx.overlay,
            **kwargs,
        )
        self._arm(algo)
        cached_layout = self._base_layouts.get(algo.name)
        if cached_layout is not None:
            # The cached list came from a previous epoch's prepared instance,
            # so its entries are already normalised ``(id, tuple)`` pairs and
            # the list is treated as immutable by every reader — share it
            # instead of letting ``use_layout`` re-copy 10k entries per epoch.
            algo._layout = cached_layout
        algo.prepare()
        self._base_layouts.setdefault(algo.name, algo.layout)
        staged = self._base_staged.get(algo.name)
        if staged is None:
            # Stage the base once per engine; epoch instances adopt the
            # shared pages instead of re-encoding the layout per epoch.
            pf = DiskSimulator(self.page_bytes).load_entries(
                ctx.base.schema, algo.layout, "data"
            )
            staged = (pf.codec, pf._pages, pf.num_records)
            self._base_staged[algo.name] = staged
        algo._staged_pages = staged
        if hasattr(algo, "_plan_fp"):
            fp = self._base_fps.get(algo.name)
            if fp is None:
                self._base_fps[algo.name] = algo._plan_fp()
            else:
                # Seed the instance's L1 so it never rehashes the base.
                algo._plan_fp_cache = fp
                algo._plan_fp_layout = algo._layout
        return algo

    def _algorithm(self, name: str, recall_target=None):
        # Route every prepared-instance request (warm(), executor
        # prepare, ...) through the current epoch's context.
        return self._ctx_algorithm(self._epoch_ctx, name, recall_target)

    def _translate(self, ctx: _EpochContext, result: RSResult) -> RSResult:
        """Scan-space ids (base positions, then ``len(base)+j`` for delta
        entries) → stable ids."""
        n = len(ctx.base)
        mapped = tuple(
            sorted(
                ctx.base_ids[rid] if rid < n else ctx.delta_sids[rid - n]
                for rid in result.record_ids
            )
        )
        return replace(result, record_ids=mapped)

    def _sid_values(self, ctx: _EpochContext) -> dict:
        if ctx.values_by_sid is None:
            values = {
                sid: ctx.base.records[pos] for pos, sid in enumerate(ctx.base_ids)
            }
            if ctx.overlay is not None:
                for sid, (_, vals) in zip(ctx.delta_sids, ctx.overlay.entries):
                    values[sid] = vals
            ctx.values_by_sid = values
        return ctx.values_by_sid

    def layout_fingerprint(self) -> str:
        # Epoch-qualified: result-cache keys embed this, so each update
        # batch retires the previous epoch's result entries without
        # touching plan keys (those embed the base fingerprint only).
        return f"{super().layout_fingerprint()}#e{self._epoch_ctx.epoch}"

    # -- queries -------------------------------------------------------------
    def query(self, query, *, algorithm=None, where=None) -> RSResult:
        with Stopwatch() as watch:
            ctx = self._epoch_ctx
            algo = self._ctx_algorithm(ctx, algorithm or self.default_algorithm)
            result = self._translate(ctx, algo.run(query))
            if where is not None:
                values = self._sid_values(ctx)
                kept = tuple(r for r in result.record_ids if where(values[r]))
                result = replace(result, record_ids=kept)
        return self._record("reverse-skyline", result, wall_time_s=watch.stop())

    def _execute_spec(self, spec) -> RSResult:
        if spec.kind != "query":
            raise AlgorithmError(
                f"maintained engines answer reverse-skyline queries only "
                f"(got kind={spec.kind!r}); compact() and open a plain "
                f"engine for skyband/subset queries"
            )
        ctx = self._epoch_ctx
        name, rt = self._spec_routing(spec)
        algo = self._ctx_algorithm(ctx, name, rt)
        return self._translate(ctx, algo.run(spec.query))

    def _prepare_for(self, spec) -> None:
        if spec.kind == "query":
            name, rt = self._spec_routing(spec)
            self._ctx_algorithm(self._epoch_ctx, name, rt)

    def skyband(self, query, k: int) -> RSResult:
        raise AlgorithmError(
            "maintained engines do not answer skyband queries; "
            "compact() and open a plain engine"
        )

    def query_subset(self, attributes, query_values) -> RSResult:
        raise AlgorithmError(
            "maintained engines do not answer subset queries; "
            "compact() and open a plain engine"
        )

    def influence(self, probes):
        raise AlgorithmError(
            "maintained engines do not run influence analysis; "
            "compact() and open a plain engine"
        )

    # -- write path ----------------------------------------------------------
    def apply_updates(
        self,
        inserts: Iterable[Sequence] = (),
        deletes: Iterable[int] = (),
    ) -> UpdateResult:
        """Absorb one mutation batch and advance to the next epoch.

        Non-blocking for readers: in-flight queries finish against the
        epoch they started on; queries submitted after this returns see
        the new state. Plan-cache impact is zero unless the batch trips a
        compaction, and then only the compacted base's plans drop.
        """
        with self._maint_lock:
            old_dataset = self.dataset
            old_ctx = self._epoch_ctx
            old_layouts = dict(self._base_layouts)
            old_fps = dict(self._base_fps)
            info = self.store.apply(inserts, deletes)
            dropped = 0
            if info.compacted:
                self.dataset = self.store.base
                self._base_layouts.clear()
                self._base_fps.clear()
                self._base_staged.clear()
                # Rebuilds _full_order_entries from the new base, drops
                # prepared instances / shared scans / the fingerprint, and
                # bumps the result-cache version.
                self.invalidate_caches()
                pc = plan_cache()
                seen: set[str] = set()
                for name, layout in old_layouts.items():
                    fp = old_fps.get(name) or plan_fingerprint(
                        old_dataset, layout
                    )
                    if fp not in seen:
                        seen.add(fp)
                        d, _ = pc.invalidate_fingerprint(fp)
                        dropped += d
                self.plans_invalidated_total += dropped
            else:
                # Version bump: a result computed against the pre-update
                # epoch but settled (cached) after this point is rejected
                # by the cache's stale-version check.
                self.result_cache().invalidate()
            retained = plan_cache().stats().entries
            self.plans_retained_total += retained
            self._epoch_ctx = self._build_ctx()
            if not info.compacted:
                # The base is untouched, so the outgoing epoch's prepared
                # instances stay valid — clone them onto the new overlay
                # instead of re-preparing from scratch. In-flight queries
                # keep the old instances; the clones share only the
                # base-derived memos (see TRS.with_overlay).
                for key, prev in old_ctx.algorithms.items():
                    self._epoch_ctx.algorithms[key] = prev.with_overlay(
                        self._epoch_ctx.overlay
                    )
        if _obs.enabled:
            _obs.set_gauge("repro_maint_delta_records", float(info.delta_records))
            _obs.set_gauge("repro_maint_tombstones", float(info.tombstones))
            _obs.inc("repro_maint_updates_total")
            if info.compacted:
                _obs.inc("repro_maint_compactions_total")
            if dropped:
                _obs.inc("repro_maint_plans_invalidated_total", dropped)
            if retained:
                _obs.inc("repro_maint_plans_retained_total", retained)
        return info

    def compact(self) -> bool:
        """Force a compaction now (no-op when there is nothing pending)."""
        with self._maint_lock:
            old_dataset = self.dataset
            old_layouts = dict(self._base_layouts)
            old_fps = dict(self._base_fps)
            if not self.store.compact():
                return False
            self.dataset = self.store.base
            self._base_layouts.clear()
            self._base_fps.clear()
            self._base_staged.clear()
            self.invalidate_caches()
            pc = plan_cache()
            dropped = 0
            seen: set[str] = set()
            for name, layout in old_layouts.items():
                fp = old_fps.get(name) or plan_fingerprint(
                    old_dataset, layout
                )
                if fp not in seen:
                    seen.add(fp)
                    d, _ = pc.invalidate_fingerprint(fp)
                    dropped += d
            self.plans_invalidated_total += dropped
            self._epoch_ctx = self._build_ctx()
        if _obs.enabled:
            _obs.inc("repro_maint_compactions_total")
            if dropped:
                _obs.inc("repro_maint_plans_invalidated_total", dropped)
        return True

    # -- worker synchronisation ----------------------------------------------
    def _export_maint_wire(self) -> dict:
        """Picklable delta state for pool workers (see
        :meth:`MaintStore.wire_state`)."""
        return self.store.wire_state()

    def sync_maint_state(self, blob: dict) -> bool:
        """Adopt a parent's wire state (worker side). Returns True when
        the epoch advanced; stale re-deliveries are ignored."""
        with self._maint_lock:
            changed = self.store.install_wire_state(blob)
            if changed:
                self.result_cache().invalidate()
                self._epoch_ctx = self._build_ctx()
            return changed

    # -- observability -------------------------------------------------------
    def maint_metrics(self) -> dict:
        """Store state plus the surgical-invalidation counters the bench
        and the advisor read."""
        stats = self.store.stats()
        stats["plans_invalidated_total"] = self.plans_invalidated_total
        stats["plans_retained_total"] = self.plans_retained_total
        return stats
