"""Incremental maintenance: delta AL-Trees, LSM-style compaction, and a
maintained engine that answers queries over ``base ⊎ deltas ⊖ tombstones``
bit-identically to a from-scratch rebuild.

Layering (see ``docs/maintenance.md``):

- :class:`MaintStore` — the write path. Inserts land in small delta
  AL-Trees (size-tiered merged as they accumulate), deletes become
  tombstones; every applied batch bumps a monotone *epoch*. When churn
  crosses the compaction threshold the deltas fold into a new base
  dataset in one atomic swap.
- :class:`MaintainedEngine` — a :class:`~repro.engine.ReverseSkylineEngine`
  whose prepared algorithm instances carry the current epoch's
  :class:`~repro.core.overlay.Overlay`. Updates never quiesce readers:
  in-flight queries finish against the epoch they started on.
- Surgical plan-cache invalidation — plan keys embed the *base*
  fingerprint, so update epochs drop nothing; only a compaction
  invalidates, and only the plans of the compacted base
  (:meth:`repro.kernels.plancache.PlanCache.invalidate_fingerprint`).
"""

from repro.maint.engine import MaintainedEngine
from repro.maint.store import MaintStore, UpdateResult

__all__ = ["MaintStore", "MaintainedEngine", "UpdateResult"]
