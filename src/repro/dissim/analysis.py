"""Metricity analysis of dissimilarity matrices.

Section 1.1 and Section 2 argue that expert-provided and perceptual
similarities routinely violate the metric axioms (reflexivity, symmetry,
triangle inequality). This module measures those violations, so users can
see *why* metric-space indexes are inapplicable to their data and tests can
assert that generated workloads really are non-metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dissim.matrix import MatrixDissimilarity

__all__ = ["MetricityReport", "analyze_metricity"]


@dataclass(frozen=True)
class MetricityReport:
    """Summary of which metric axioms a dissimilarity matrix satisfies."""

    cardinality: int
    is_reflexive: bool
    is_symmetric: bool
    triangle_violations: int
    triangle_triples: int
    worst_violation: tuple[int, int, int] | None
    worst_violation_margin: float

    @property
    def is_metric(self) -> bool:
        """True only when all three axioms hold."""
        return self.is_reflexive and self.is_symmetric and self.triangle_violations == 0

    @property
    def violation_rate(self) -> float:
        """Fraction of ordered triples violating the triangle inequality."""
        if self.triangle_triples == 0:
            return 0.0
        return self.triangle_violations / self.triangle_triples

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.is_metric:
            return f"metric over {self.cardinality} values"
        parts = []
        if not self.is_reflexive:
            parts.append("non-reflexive")
        if not self.is_symmetric:
            parts.append("asymmetric")
        if self.triangle_violations:
            parts.append(
                f"{self.triangle_violations}/{self.triangle_triples} triangle violations"
            )
        return f"non-metric over {self.cardinality} values ({', '.join(parts)})"


def analyze_metricity(dissim: MatrixDissimilarity | np.ndarray) -> MetricityReport:
    """Check reflexivity, symmetry and the triangle inequality for a matrix.

    The triangle check runs vectorised over all ordered triples
    ``(x, y, z)`` with distinct ``y``, costing ``O(v^3)`` space-free passes —
    fine for the domain cardinalities this library targets (tens to a few
    hundred values per attribute).
    """
    arr = dissim.matrix if isinstance(dissim, MatrixDissimilarity) else np.asarray(dissim, float)
    v = arr.shape[0]
    is_reflexive = not np.diagonal(arr).any()
    is_symmetric = bool((arr == arr.T).all())

    # d(x, z) <= d(x, y) + d(y, z) for all x, y, z.
    # via broadcasting: lhs[x, z] vs min over y of arr[x, y] + arr[y, z]
    violations = 0
    worst: tuple[int, int, int] | None = None
    worst_margin = 0.0
    total = v * v * v
    for y in range(v):
        bound = arr[:, y][:, None] + arr[y, :][None, :]  # shape (v, v)
        margin = arr - bound
        bad = margin > 1e-12
        count = int(bad.sum())
        violations += count
        if count:
            x, z = np.unravel_index(int(np.argmax(margin)), margin.shape)
            if margin[x, z] > worst_margin:
                worst_margin = float(margin[x, z])
                worst = (int(x), int(y), int(z))
    return MetricityReport(
        cardinality=v,
        is_reflexive=is_reflexive,
        is_symmetric=is_symmetric,
        triangle_violations=violations,
        triangle_triples=total,
        worst_violation=worst,
        worst_violation_margin=worst_margin,
    )
