"""Dissimilarity functions for numeric attributes (paper Section 6).

Numeric attributes come from continuous, totally ordered domains. The paper
handles them inside the TRS framework by discretising values into buckets,
so group-level reasoning applies, and refining with exact checks at the
leaves. These classes provide both the exact value-level function and the
bucket-interval bounds the discretised traversal needs.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.dissim.base import Dissimilarity
from repro.errors import DissimilarityError

__all__ = ["NumericDissimilarity", "AbsoluteDifference", "ScaledDifference"]


class NumericDissimilarity(Dissimilarity):
    """Wraps an arbitrary ``(float, float) -> float`` callable.

    Parameters
    ----------
    fn:
        The dissimilarity callable. It need not be metric; it must be
        non-negative and should satisfy ``fn(x, x) == 0``.
    lo, hi:
        Optional domain bounds used for validation and bucketing.
    """

    def __init__(
        self,
        fn: Callable[[float, float], float],
        *,
        lo: float | None = None,
        hi: float | None = None,
    ) -> None:
        if not callable(fn):
            raise DissimilarityError("fn must be callable")
        if lo is not None and hi is not None and lo > hi:
            raise DissimilarityError(f"invalid numeric domain [{lo}, {hi}]")
        self._fn = fn
        self.lo = lo
        self.hi = hi

    def validate_value(self, value) -> None:
        try:
            x = float(value)
        except (TypeError, ValueError):
            raise DissimilarityError(f"non-numeric value {value!r}") from None
        if self.lo is not None and x < self.lo:
            raise DissimilarityError(f"value {x} below domain bound {self.lo}")
        if self.hi is not None and x > self.hi:
            raise DissimilarityError(f"value {x} above domain bound {self.hi}")

    def __call__(self, a, b) -> float:
        return self._check_finite(self._fn(a, b), "NumericDissimilarity")

    def interval_bounds(
        self, a_lo: float, a_hi: float, b_lo: float, b_hi: float, samples: int = 4
    ) -> tuple[float, float]:
        """Return ``(min, max)`` bounds of ``d(a, b)`` for ``a`` in
        ``[a_lo, a_hi]`` and ``b`` in ``[b_lo, b_hi]``.

        For an arbitrary callable the bounds are estimated by sampling the
        corners plus ``samples`` interior points per side, which is exact
        for the monotone-in-|a-b| functions used in practice. Subclasses
        with known structure override this with closed forms.
        """
        points_a = _linspace(a_lo, a_hi, samples)
        points_b = _linspace(b_lo, b_hi, samples)
        values = [self._fn(a, b) for a in points_a for b in points_b]
        return min(values), max(values)


class AbsoluteDifference(NumericDissimilarity):
    """The classic ``|a - b|`` dissimilarity (metric; included so mixed
    metric/non-metric schemas are expressible)."""

    def __init__(self, *, lo: float | None = None, hi: float | None = None) -> None:
        super().__init__(lambda a, b: abs(a - b), lo=lo, hi=hi)

    def interval_bounds(self, a_lo, a_hi, b_lo, b_hi, samples: int = 4):
        # Exact: |a-b| over boxes. Min is 0 if the intervals overlap.
        if a_hi < b_lo:
            lo = b_lo - a_hi
        elif b_hi < a_lo:
            lo = a_lo - b_hi
        else:
            lo = 0.0
        hi = max(abs(a_lo - b_hi), abs(a_hi - b_lo))
        return lo, hi


class ScaledDifference(NumericDissimilarity):
    """``w * |a - b|`` with a positive weight, handy for mixed schemas where
    numeric attributes live on very different scales."""

    def __init__(self, weight: float, *, lo: float | None = None, hi: float | None = None):
        if weight <= 0:
            raise DissimilarityError(f"weight must be positive, got {weight}")
        self.weight = float(weight)
        super().__init__(lambda a, b: self.weight * abs(a - b), lo=lo, hi=hi)

    def interval_bounds(self, a_lo, a_hi, b_lo, b_hi, samples: int = 4):
        base = AbsoluteDifference().interval_bounds(a_lo, a_hi, b_lo, b_hi)
        return base[0] * self.weight, base[1] * self.weight


def _linspace(lo: float, hi: float, n: int) -> list[float]:
    if n < 2 or lo == hi:
        return [lo, hi]
    step = (hi - lo) / (n - 1)
    return [lo + i * step for i in range(n)]
