"""Matrix-backed dissimilarity for categorical attributes.

Categorical attributes take values from a finite domain; the dissimilarity
between every pair of values is given explicitly, typically by a domain
expert (the paper's running example: operating-system and database
dissimilarities in Figure 1). Such expert-provided matrices are generally
non-metric — the paper's Figure 1 violates the triangle inequality
(``d(MSW, SL) = 1.0 > d(MSW, RHL) + d(RHL, SL) = 0.9``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.dissim.base import Dissimilarity
from repro.errors import DissimilarityError

__all__ = ["MatrixDissimilarity"]


class MatrixDissimilarity(Dissimilarity):
    """Dissimilarity between integer value ids ``0..cardinality-1`` backed by
    a dense square matrix.

    Parameters
    ----------
    matrix:
        Square array-like of shape ``(v, v)`` with non-negative entries.
    labels:
        Optional sequence of ``v`` human-readable value names. When given,
        :meth:`from_labeled` style lookups via :meth:`value_id` are enabled.
    require_zero_diagonal:
        When True (default), reject matrices where ``d(x, x) != 0``;
        the pre-sorting optimisation (Section 4.2) relies on
        self-dissimilarity being minimal.
    """

    def __init__(
        self,
        matrix,
        labels: Sequence[str] | None = None,
        *,
        require_zero_diagonal: bool = True,
    ) -> None:
        arr = np.asarray(matrix, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise DissimilarityError(f"dissimilarity matrix must be square, got shape {arr.shape}")
        if arr.shape[0] == 0:
            raise DissimilarityError("dissimilarity matrix must be non-empty")
        if not np.isfinite(arr).all():
            raise DissimilarityError("dissimilarity matrix contains non-finite entries")
        if (arr < 0).any():
            raise DissimilarityError("dissimilarity matrix contains negative entries")
        if require_zero_diagonal and np.diagonal(arr).any():
            raise DissimilarityError("dissimilarity of a value to itself must be 0")
        if labels is not None:
            if len(labels) != arr.shape[0]:
                raise DissimilarityError(
                    f"got {len(labels)} labels for a {arr.shape[0]}-value domain"
                )
            if len(set(labels)) != len(labels):
                raise DissimilarityError("value labels must be unique")
        self._matrix = arr
        self._table = arr.tolist()
        self._labels = list(labels) if labels is not None else None
        self._label_to_id = (
            {label: i for i, label in enumerate(self._labels)} if self._labels else None
        )

    @classmethod
    def from_pairs(
        cls,
        labels: Sequence[str],
        pairs: Mapping[tuple[str, str], float],
        *,
        symmetric: bool = True,
        default: float | None = None,
    ) -> "MatrixDissimilarity":
        """Build a matrix from sparse ``(label_a, label_b) -> d`` entries.

        The diagonal defaults to 0. Missing off-diagonal entries take
        ``default`` if provided, otherwise raise.
        """
        v = len(labels)
        index = {label: i for i, label in enumerate(labels)}
        arr = np.full((v, v), np.nan)
        np.fill_diagonal(arr, 0.0)
        for (la, lb), d in pairs.items():
            if la not in index or lb not in index:
                raise DissimilarityError(f"pair ({la!r}, {lb!r}) references unknown label")
            arr[index[la], index[lb]] = d
            if symmetric:
                arr[index[lb], index[la]] = d
        if np.isnan(arr).any():
            if default is None:
                missing = int(np.isnan(arr).sum())
                raise DissimilarityError(
                    f"{missing} value pairs have no dissimilarity and no default was given"
                )
            arr = np.where(np.isnan(arr), default, arr)
        return cls(arr, labels=labels)

    @property
    def cardinality(self) -> int:
        """Number of values in the attribute domain."""
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """A read-only view of the underlying matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    @property
    def labels(self) -> list[str] | None:
        return list(self._labels) if self._labels is not None else None

    def value_id(self, label: str) -> int:
        """Map a value label to its integer id."""
        if self._label_to_id is None:
            raise DissimilarityError("this dissimilarity has no value labels")
        try:
            return self._label_to_id[label]
        except KeyError:
            raise DissimilarityError(f"unknown value label {label!r}") from None

    def validate_value(self, value) -> None:
        if not isinstance(value, (int, np.integer)) or not 0 <= value < self.cardinality:
            raise DissimilarityError(
                f"value {value!r} outside categorical domain [0, {self.cardinality})"
            )

    def __call__(self, a, b) -> float:
        try:
            return self._table[a][b]
        except (IndexError, TypeError):
            self.validate_value(a)
            self.validate_value(b)
            raise

    def table(self) -> list[list[float]]:
        return self._table

    def is_symmetric(self) -> bool:
        return bool((self._matrix == self._matrix.T).all())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatrixDissimilarity(cardinality={self.cardinality})"
