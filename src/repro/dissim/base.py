"""Abstract base class for per-attribute dissimilarity functions.

The paper (Section 3) defines, for each attribute ``i``, a dissimilarity
function ``d_i : A_i x A_i -> R`` with **no** metric requirements: values
may violate the triangle inequality, and the attribute domain need not be
ordered. The only property the algorithms rely on is that a value is never
strictly *more* dissimilar to itself than to another value — in practice
``d(x, x) == 0`` for all functions used in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import DissimilarityError

__all__ = ["Dissimilarity"]


class Dissimilarity(ABC):
    """A dissimilarity function over a single attribute domain.

    Subclasses implement :meth:`__call__` for a pair of attribute values.
    Values are represented the way the owning
    :class:`~repro.data.schema.Attribute` stores them: integer value ids
    for categorical attributes, floats for numeric attributes.
    """

    @abstractmethod
    def __call__(self, a, b) -> float:
        """Return the dissimilarity between values ``a`` and ``b``."""

    def validate_value(self, value) -> None:
        """Raise :class:`DissimilarityError` if ``value`` is outside the
        function's domain. The default accepts everything."""

    def table(self):
        """Return a dense lookup table (list of lists) if this function is
        defined over a finite domain, else ``None``.

        Algorithms use the table on their hot paths because nested-list
        indexing is markedly faster than a Python-level call per check.
        """
        return None

    def is_zero_reflexive(self) -> bool:
        """True if ``d(x, x) == 0`` is guaranteed for every domain value."""
        return True

    @staticmethod
    def _check_finite(value: float, context: str) -> float:
        if value != value or value in (float("inf"), float("-inf")):
            raise DissimilarityError(f"non-finite dissimilarity in {context}: {value!r}")
        return value
