"""A dissimilarity space: one dissimilarity function per attribute.

All reverse-skyline algorithms take a :class:`DissimilaritySpace` which
bundles the ``m`` per-attribute functions ``d_1 .. d_m`` of the paper's
problem definition (Section 3), plus fast-path lookup tables for the
finite (categorical) attributes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dissim.base import Dissimilarity
from repro.dissim.matrix import MatrixDissimilarity
from repro.errors import DissimilarityError

__all__ = ["DissimilaritySpace"]


class DissimilaritySpace:
    """Bundle of per-attribute dissimilarity functions.

    Parameters
    ----------
    dissims:
        One :class:`Dissimilarity` per attribute, in attribute order.
    """

    def __init__(self, dissims: Sequence[Dissimilarity]) -> None:
        if not dissims:
            raise DissimilarityError("a dissimilarity space needs at least one attribute")
        for i, d in enumerate(dissims):
            if not isinstance(d, Dissimilarity):
                raise DissimilarityError(
                    f"attribute {i}: expected a Dissimilarity, got {type(d).__name__}"
                )
        self._dissims = list(dissims)

    @property
    def num_attributes(self) -> int:
        return len(self._dissims)

    @property
    def dissims(self) -> list[Dissimilarity]:
        return list(self._dissims)

    def __getitem__(self, i: int) -> Dissimilarity:
        return self._dissims[i]

    def __len__(self) -> int:
        return len(self._dissims)

    def d(self, i: int, a, b) -> float:
        """Dissimilarity between values ``a`` and ``b`` of attribute ``i``."""
        return self._dissims[i](a, b)

    def tables(self) -> list[list[list[float]] | None]:
        """Per-attribute dense lookup tables (``None`` where the attribute
        domain is not finite). Hot loops index these directly instead of
        calling :meth:`d` per check."""
        return [d.table() for d in self._dissims]

    def cardinalities(self) -> list[int | None]:
        """Per-attribute domain sizes (``None`` for numeric attributes)."""
        return [
            d.cardinality if isinstance(d, MatrixDissimilarity) else None for d in self._dissims
        ]

    def is_fully_categorical(self) -> bool:
        return all(isinstance(d, MatrixDissimilarity) for d in self._dissims)

    def subset(self, attribute_indices: Sequence[int]) -> "DissimilaritySpace":
        """Project onto a subset of attributes (Section 5.6: queries over
        user-chosen attribute subsets)."""
        if not attribute_indices:
            raise DissimilarityError("attribute subset must be non-empty")
        seen = set()
        for i in attribute_indices:
            if not 0 <= i < len(self._dissims):
                raise DissimilarityError(f"attribute index {i} out of range")
            if i in seen:
                raise DissimilarityError(f"duplicate attribute index {i}")
            seen.add(i)
        return DissimilaritySpace([self._dissims[i] for i in attribute_indices])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(d).__name__ for d in self._dissims)
        return f"DissimilaritySpace([{kinds}])"
