"""Random dissimilarity generators.

Section 5.2 of the paper: "The similarity between different values of
attributes are chosen randomly from the interval [0-1]." These helpers
reproduce that construction, with knobs for symmetry and for deliberately
planting triangle-inequality violations (useful in tests that must verify
non-metric behaviour is handled).
"""

from __future__ import annotations

import numpy as np

from repro.dissim.matrix import MatrixDissimilarity
from repro.errors import DissimilarityError

__all__ = [
    "random_matrix",
    "random_dissimilarity",
    "nonmetric_dissimilarity",
    "metric_like_dissimilarity",
]


def random_matrix(
    cardinality: int,
    rng: np.random.Generator,
    *,
    symmetric: bool = True,
) -> np.ndarray:
    """Draw a ``cardinality x cardinality`` matrix of U[0,1] dissimilarities
    with a zero diagonal, the paper's construction for both the real-dataset
    and synthetic experiments."""
    if cardinality < 1:
        raise DissimilarityError(f"cardinality must be >= 1, got {cardinality}")
    arr = rng.random((cardinality, cardinality))
    if symmetric:
        arr = np.triu(arr, 1)
        arr = arr + arr.T
    np.fill_diagonal(arr, 0.0)
    return arr


def random_dissimilarity(
    cardinality: int,
    rng: np.random.Generator,
    *,
    symmetric: bool = True,
) -> MatrixDissimilarity:
    """A :class:`MatrixDissimilarity` over ``random_matrix``."""
    return MatrixDissimilarity(random_matrix(cardinality, rng, symmetric=symmetric))


def nonmetric_dissimilarity(
    cardinality: int,
    rng: np.random.Generator,
) -> MatrixDissimilarity:
    """A random matrix guaranteed to violate the triangle inequality.

    At least one triple ``(x, y, z)`` satisfies
    ``d(x, z) > d(x, y) + d(y, z)``, so metric-space pruning reasoning is
    provably unsound on the result.
    """
    if cardinality < 3:
        raise DissimilarityError("need at least 3 values to violate the triangle inequality")
    arr = random_matrix(cardinality, rng)
    # Plant a violation on the first three values: make the two legs tiny
    # and the direct edge large.
    arr[0, 1] = arr[1, 0] = 0.05
    arr[1, 2] = arr[2, 1] = 0.05
    arr[0, 2] = arr[2, 0] = 0.9
    return MatrixDissimilarity(arr)


def metric_like_dissimilarity(
    cardinality: int,
    rng: np.random.Generator,
) -> MatrixDissimilarity:
    """A random matrix post-processed into a true metric via shortest-path
    closure (the Floyd-Warshall contraction). Used as a control when
    comparing behaviour on metric vs non-metric inputs."""
    arr = random_matrix(cardinality, rng)
    # Floyd-Warshall: d(x,z) <- min(d(x,z), d(x,y)+d(y,z)) until closure.
    for k in range(cardinality):
        arr = np.minimum(arr, arr[:, k][:, None] + arr[k, :][None, :])
    np.fill_diagonal(arr, 0.0)
    return MatrixDissimilarity(arr)
