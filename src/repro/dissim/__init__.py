"""Dissimilarity functions — arbitrary, possibly non-metric, per-attribute.

Public surface:

- :class:`Dissimilarity` — abstract per-attribute function
- :class:`MatrixDissimilarity` — finite-domain, matrix-backed (categorical)
- :class:`NumericDissimilarity` / :class:`AbsoluteDifference` /
  :class:`ScaledDifference` — numeric attributes (paper Section 6)
- :class:`DissimilaritySpace` — the per-attribute bundle algorithms consume
- :func:`random_dissimilarity` et al. — the paper's U[0,1] generators
- :func:`analyze_metricity` — measure triangle-inequality violations
"""

from repro.dissim.analysis import MetricityReport, analyze_metricity
from repro.dissim.base import Dissimilarity
from repro.dissim.generators import (
    metric_like_dissimilarity,
    nonmetric_dissimilarity,
    random_dissimilarity,
    random_matrix,
)
from repro.dissim.matrix import MatrixDissimilarity
from repro.dissim.numeric import AbsoluteDifference, NumericDissimilarity, ScaledDifference
from repro.dissim.space import DissimilaritySpace

__all__ = [
    "AbsoluteDifference",
    "Dissimilarity",
    "DissimilaritySpace",
    "MatrixDissimilarity",
    "MetricityReport",
    "NumericDissimilarity",
    "ScaledDifference",
    "analyze_metricity",
    "metric_like_dissimilarity",
    "nonmetric_dissimilarity",
    "random_dissimilarity",
    "random_matrix",
]
