"""Probabilistic reverse skyline over existentially uncertain data.

Public surface: :func:`probabilistic_reverse_skyline`,
:func:`monte_carlo_membership`, :class:`ProbabilisticResult`.
"""

from repro.uncertain.probabilistic import (
    ProbabilisticResult,
    monte_carlo_membership,
    probabilistic_reverse_skyline,
)

__all__ = [
    "ProbabilisticResult",
    "monte_carlo_membership",
    "probabilistic_reverse_skyline",
]
