"""Probabilistic reverse skyline over existentially uncertain data.

Lian & Chen (SIGMOD 2008 / TODS 2010 — the paper's refs [17, 18]) study
reverse skylines when objects are uncertain. This module implements the
*existential* uncertainty model for the non-metric setting: each object
``Y`` exists independently with probability ``p_Y``, and

``P(X ∈ RS(Q)) = p_X · Π_{Y : Y ≻_X Q} (1 - p_Y)``

— ``X`` must exist, and every potential pruner must be absent (pruners
act independently; non-pruners are irrelevant). The probabilistic
reverse skyline at threshold ``τ`` keeps the objects whose membership
probability reaches ``τ``.

Two implementations: an exact one (enumerate each object's pruner set —
the same scans the deterministic algorithms do, reusing the AL-Tree
enumeration) and a Monte-Carlo estimator used by the tests to validate
the closed form.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.altree.tree import ALTree
from repro.data.dataset import Dataset
from repro.errors import AlgorithmError
from repro.skyline.domination import dominates
from repro.skyline.oracle import reverse_skyline_by_pruners
from repro.sorting.keys import ascending_cardinality_order

__all__ = [
    "ProbabilisticResult",
    "probabilistic_reverse_skyline",
    "monte_carlo_membership",
]


@dataclass(frozen=True)
class ProbabilisticResult:
    """Membership probabilities plus the thresholded result."""

    threshold: float
    probabilities: tuple[float, ...]
    record_ids: tuple[int, ...]

    def probability_of(self, record_id: int) -> float:
        return self.probabilities[record_id]


def _validate_probabilities(dataset: Dataset, probabilities: Sequence[float]):
    if len(probabilities) != len(dataset):
        raise AlgorithmError(
            f"{len(probabilities)} probabilities for {len(dataset)} records"
        )
    ps = [float(p) for p in probabilities]
    for i, p in enumerate(ps):
        if not 0.0 <= p <= 1.0:
            raise AlgorithmError(f"record {i}: probability {p} outside [0, 1]")
    return ps


def _pruner_sets(dataset: Dataset, q: tuple) -> list[list[int]]:
    """Each record's pruner ids, via one AL-Tree enumeration per record
    (group-level elimination) when the schema is categorical, else via
    pairwise scans."""
    n = len(dataset)
    out: list[list[int]] = [[] for _ in range(n)]
    if not dataset.space.is_fully_categorical() or n == 0:
        for x_id, x in enumerate(dataset.records):
            out[x_id] = [
                y_id
                for y_id, y in enumerate(dataset.records)
                if y_id != x_id and dominates(dataset.space, y, q, x)
            ]
        return out
    tables = dataset.space.tables()
    m = dataset.num_attributes
    order = ascending_cardinality_order(dataset.schema, dataset)
    tree = ALTree(order)
    for rid, values in enumerate(dataset.records):
        tree.insert(rid, values)
    for x_id, x in enumerate(dataset.records):
        qd = [tables[i][x[i]][q[i]] for i in range(m)]
        pruners: list[int] = []
        stack = [(tree.root, False)]
        while stack:
            node, found_closer = stack.pop()
            if node.entries:
                if found_closer:
                    pruners.extend(rid for rid, _ in node.entries if rid != x_id)
                continue
            for child in node.children.values():
                i = order[child.position]
                d_cp = tables[i][x[i]][child.key]
                if d_cp <= qd[i]:
                    stack.append((child, found_closer or d_cp < qd[i]))
        out[x_id] = pruners
    return out


def probabilistic_reverse_skyline(
    dataset: Dataset,
    probabilities: Sequence[float],
    query: tuple,
    *,
    threshold: float = 0.5,
) -> ProbabilisticResult:
    """Exact membership probabilities under independent existential
    uncertainty, thresholded at ``threshold``."""
    if not 0.0 <= threshold <= 1.0:
        raise AlgorithmError(f"threshold {threshold} outside [0, 1]")
    ps = _validate_probabilities(dataset, probabilities)
    q = dataset.validate_query(query)
    membership: list[float] = []
    for x_id, pruners in enumerate(_pruner_sets(dataset, q)):
        prob = ps[x_id]
        for y_id in pruners:
            prob *= 1.0 - ps[y_id]
        membership.append(prob)
    ids = tuple(i for i, p in enumerate(membership) if p >= threshold)
    return ProbabilisticResult(
        threshold=threshold,
        probabilities=tuple(membership),
        record_ids=ids,
    )


def monte_carlo_membership(
    dataset: Dataset,
    probabilities: Sequence[float],
    query: tuple,
    *,
    trials: int = 500,
    seed: int = 7,
) -> list[float]:
    """Estimate membership probabilities by sampling possible worlds —
    the validation baseline for the closed form."""
    if trials < 1:
        raise AlgorithmError(f"trials must be >= 1, got {trials}")
    ps = np.asarray(_validate_probabilities(dataset, probabilities))
    q = dataset.validate_query(query)
    n = len(dataset)
    hits = np.zeros(n)
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        alive = rng.random(n) < ps
        world_ids = np.flatnonzero(alive)
        world = dataset.with_records([dataset.records[int(i)] for i in world_ids])
        members = reverse_skyline_by_pruners(world, q)
        hits[world_ids[members]] += 1
    return (hits / trials).tolist()
