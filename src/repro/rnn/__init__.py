"""Reverse nearest neighbour baseline (the query RS generalises).

Public surface:

- :class:`WeightedSum` / :func:`random_weight_vectors`
- :func:`reverse_nearest_neighbors` / :func:`rnn_union`
"""

from repro.rnn.aggregates import WeightedSum, random_weight_vectors
from repro.rnn.query import reverse_nearest_neighbors, rnn_union

__all__ = [
    "WeightedSum",
    "random_weight_vectors",
    "reverse_nearest_neighbors",
    "rnn_union",
]
