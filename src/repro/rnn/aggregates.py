"""Monotone aggregation functions over per-attribute dissimilarities.

Top-k and (reverse) nearest-neighbour queries collapse the per-attribute
dissimilarities into one score via a monotone aggregate, most commonly a
weighted sum (Section 1). The skyline needs no such function — and for
every skyline member some monotone aggregate is minimised exactly there —
which is why ``RS(Q)`` is the union of ``RNN(Q)`` over all monotone
aggregates. This module provides the aggregates used to demonstrate that
containment.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dissim.space import DissimilaritySpace
from repro.errors import AlgorithmError

__all__ = ["WeightedSum", "random_weight_vectors"]


class WeightedSum:
    """``agg(ref, o) = sum_i w_i * d_i(ref_i, o_i)`` with strictly positive
    weights — strictly monotone in every attribute distance."""

    def __init__(self, weights: Sequence[float]) -> None:
        ws = [float(w) for w in weights]
        if not ws:
            raise AlgorithmError("need at least one weight")
        if any(w <= 0 for w in ws):
            raise AlgorithmError(f"weights must be strictly positive, got {ws}")
        self.weights = ws

    def distance(self, space: DissimilaritySpace, ref: tuple, obj: tuple) -> float:
        if len(self.weights) != space.num_attributes:
            raise AlgorithmError(
                f"{len(self.weights)} weights for {space.num_attributes} attributes"
            )
        return sum(
            w * space.d(i, ref[i], obj[i]) for i, w in enumerate(self.weights)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedSum({self.weights})"


def random_weight_vectors(
    num_attributes: int, count: int, rng: np.random.Generator
) -> list[WeightedSum]:
    """``count`` random strictly positive weight vectors (Dirichlet-ish via
    normalised uniforms, bounded away from zero)."""
    out = []
    for _ in range(count):
        raw = rng.random(num_attributes) + 0.05
        out.append(WeightedSum((raw / raw.sum()).tolist()))
    return out
