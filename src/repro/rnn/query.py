"""Reverse nearest neighbour queries under a fixed monotone aggregate.

``X ∈ RNN_D(Q, agg)`` iff no other object is strictly closer to ``X``
than the query is, under the aggregate: ``∀Y ∈ D \\ {X}:
agg(X, Y) >= agg(X, Q)``. With strictly positive weights, any pruner
``Y ≻_X Q`` is strictly closer in aggregate, so ``RNN ⊆ RS`` for every
weight vector — the containment Section 1 builds the RS motivation on.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.rnn.aggregates import WeightedSum

__all__ = ["reverse_nearest_neighbors", "rnn_union"]


def reverse_nearest_neighbors(
    dataset: Dataset, query: tuple, aggregate: WeightedSum
) -> list[int]:
    """All record ids for which the query is a nearest neighbour under
    ``aggregate`` (ties count as still-nearest, matching the non-strict
    side of the reverse-skyline pruner definition)."""
    q = dataset.validate_query(query)
    space = dataset.space
    result = []
    for x_id, x in enumerate(dataset.records):
        dq = aggregate.distance(space, x, q)
        if not any(
            aggregate.distance(space, x, y) < dq
            for y_id, y in enumerate(dataset.records)
            if y_id != x_id
        ):
            result.append(x_id)
    return result


def rnn_union(
    dataset: Dataset, query: tuple, aggregates: list[WeightedSum]
) -> set[int]:
    """Union of RNN result sets over several aggregates — a lower bound on
    (and, in the limit over all monotone aggregates, exactly) ``RS(Q)``."""
    out: set[int] = set()
    for agg in aggregates:
        out.update(reverse_nearest_neighbors(dataset, query, agg))
    return out
