"""Influence analysis — the application the paper builds RS for.

Section 1: an object's *influence* is the size of its reverse skyline
(the admins suitable for many servers, the cars likely to win many
customers). Operationally the questions are always the same — score a set
of probe objects, rank them, and quantify how skewed the influence
distribution is ("heavily skewed influence distribution among admins and
attrition of highly influential admins are all causes of concern"). This
module packages those questions over any reverse-skyline algorithm.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.base import RSResult, ReverseSkylineAlgorithm
from repro.core.registry import make_algorithm
from repro.data.dataset import Dataset
from repro.errors import ExperimentError

__all__ = ["InfluenceReport", "influence_analysis", "self_influence", "gini"]


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = perfectly even,
    -> 1 = concentrated on one member). The standard skew summary for
    influence distributions."""
    vals = sorted(float(v) for v in values)
    if not vals:
        raise ExperimentError("gini of an empty distribution is undefined")
    if any(v < 0 for v in vals):
        raise ExperimentError("gini requires non-negative values")
    total = sum(vals)
    if total == 0:
        return 0.0
    n = len(vals)
    cumulative = 0.0
    weighted = 0.0
    for i, v in enumerate(vals, start=1):
        cumulative += v
        weighted += i * v
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


@dataclass(frozen=True)
class InfluenceReport:
    """Outcome of an influence analysis over a set of probe objects."""

    scores: dict[str, int]
    results: dict[str, RSResult]
    total_checks: int

    def ranked(self) -> list[tuple[str, int]]:
        """Probes by descending influence, ties broken by label."""
        return sorted(self.scores.items(), key=lambda kv: (-kv[1], kv[0]))

    def top(self, k: int = 1) -> list[str]:
        return [label for label, _ in self.ranked()[:k]]

    def skew(self) -> float:
        """Gini coefficient of the influence distribution."""
        return gini(list(self.scores.values()))

    def concentration(self, k: int = 2) -> float:
        """Share of total influence held by the ``k`` most influential
        probes (1.0 when the total influence is zero and k >= 1)."""
        ranked = self.ranked()
        total = sum(self.scores.values())
        if total == 0:
            return 1.0 if k >= 1 else 0.0
        return sum(score for _, score in ranked[:k]) / total


def influence_analysis(
    dataset: Dataset,
    probes: Mapping[str, tuple] | Sequence[tuple],
    *,
    algorithm: str | ReverseSkylineAlgorithm = "TRS",
    **algorithm_kwargs,
) -> InfluenceReport:
    """Score each probe object by the size of its reverse skyline.

    ``probes`` is either ``{label: object}`` or a sequence of objects
    (labelled ``probe-0`` ...). The algorithm's layout step runs once and
    is reused across probes.
    """
    if isinstance(probes, Mapping):
        labelled = dict(probes)
    else:
        labelled = {f"probe-{i}": p for i, p in enumerate(probes)}
    if not labelled:
        raise ExperimentError("need at least one probe object")
    if isinstance(algorithm, ReverseSkylineAlgorithm):
        algo = algorithm
    else:
        algo = make_algorithm(algorithm, dataset, **algorithm_kwargs)
    algo.prepare()
    results: dict[str, RSResult] = {}
    total_checks = 0
    for label, probe in labelled.items():
        result = algo.run(probe)
        results[label] = result
        total_checks += result.stats.checks
    scores = {label: len(r.record_ids) for label, r in results.items()}
    return InfluenceReport(scores=scores, results=results, total_checks=total_checks)


def self_influence(
    dataset: Dataset,
    *,
    algorithm: str = "TRS",
    sample: Sequence[int] | None = None,
    **algorithm_kwargs,
) -> InfluenceReport:
    """Influence of the database's *own* objects: each record is probed as
    a query over the rest of the database (the monochromatic influence
    ranking a dealer runs over the inventory itself). ``sample`` limits
    the probes to the given record ids."""
    ids = list(sample) if sample is not None else list(range(len(dataset)))
    for rid in ids:
        if not 0 <= rid < len(dataset):
            raise ExperimentError(f"record id {rid} out of range")
    probes = {f"record-{rid}": dataset[rid] for rid in ids}
    return influence_analysis(
        dataset, probes, algorithm=algorithm, **algorithm_kwargs
    )
