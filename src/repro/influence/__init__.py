"""Influence analysis over reverse-skyline sizes (the paper's Section 1
application).

Public surface: :func:`influence_analysis`, :func:`self_influence`,
:class:`InfluenceReport`, :func:`gini`.
"""

from repro.influence.analysis import (
    InfluenceReport,
    gini,
    influence_analysis,
    self_influence,
)

__all__ = ["InfluenceReport", "gini", "influence_analysis", "self_influence"]
