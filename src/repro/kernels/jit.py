"""Optional numba JIT tier for the fused shared-scan kernels.

The numpy frontier kernels pay one python-level dispatch per tree level
per chunk; a compiled depth-first walk pays none. This module compiles
the two fused traversals — phase 1's stacked ``IsPrunable`` and phase
2's forest ``Prune`` — with :func:`numba.njit` **when numba is
importable**, and degrades to the numpy tier otherwise. The tier is an
implementation detail behind the backend registry: ``backend="jit"``
(or ``auto`` escalation) changes wall time only. Every observable
number — results, batch structure, page IOs, ``pruner_tests``, even the
per-query ``checks_*`` decomposition — is identical to the numpy tier,
because the compiled walks replicate the frontier kernels' accounting
exactly (live-gated check counting, biggest-root-first chunking, the
collapsed-leaf probe). ``tests/test_fused.py`` pins that equivalence on
the *uncompiled* kernels, so it holds in environments without numba;
the compile-time self-check below proves compiled == uncompiled before
the tier is ever used.

Fallback semantics
------------------
``jit_ready()`` is the single gate. It is False when:

- ``numba`` does not import (the common case: optional dependency), or
- compilation raises, or
- the post-compile self-check finds any divergence from the uncompiled
  kernels (a numba lowering/typing bug — never silently trusted).

All three degrade to the numpy tier without error; the failure reason
is kept for diagnostics (:func:`status`). Compilation happens at most
once per process and its cost is exported as
``repro_kernel_jit_compile_seconds`` when observability is on.

The kernel functions are written as plain, numba-compatible Python
(explicit stacks, flat arrays, no closures) so they run — slowly — as
ordinary interpreted code. That is what the differential tests
exercise when numba is absent.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import hooks as _obs

__all__ = [
    "compile_seconds",
    "effective_tier",
    "jit_ready",
    "kernels",
    "phase1_descend",
    "phase2_descend",
    "reset",
    "status",
]

#: Compilation state: "unchecked" -> "ready" | "fallback".
_state = {
    "phase": "unchecked",
    "kernels": None,  # {"phase1": fn, "phase2": fn} when ready
    "compile_seconds": 0.0,
    "reason": None,
}


def _import_numba():
    """Import hook, separated so tests can monkeypatch numba's absence."""
    import numba

    return numba


# ---------------------------------------------------------------------------
# The kernels. Plain Python, nopython-compilable: flat arrays in, flat
# arrays out, explicit DFS stacks, no allocation beyond the stacks.
# ---------------------------------------------------------------------------


def phase1_descend(
    m,
    level_off,
    keys,
    desc,
    cs,
    ce,
    mats3,
    order_arr,
    cand_vals,
    qd,
    self_paths,
    root_order,
    collapse,
    amin,
    amin_ex,
    prunable,
    checks,
):
    """Stacked ``IsPrunable`` (Algorithm 4) as a per-candidate DFS.

    Exactly the decisions and the check accounting of
    :func:`repro.kernels.frontier.batch_is_prunable`: the biggest root
    subtree runs alone first (candidates it decides never pay for the
    rest), a chunk is always traversed to completion once started, a
    check is counted per live (candidate, node) pair, and with
    ``collapse`` the leaf level is answered by the ``amin``/``amin_ex``
    probe (one extra check per surviving pair) instead of expansion.
    ``prunable``/``checks`` are written in place (one row per stacked
    candidate — callers pre-fill zeros).
    """
    B = cand_vals.shape[0]
    n_roots = root_order.shape[0]
    if B == 0 or m == 0 or n_roots == 0:
        return
    n_total = level_off[m]
    stack_level = np.empty(n_total + 1, dtype=np.int64)
    stack_node = np.empty(n_total + 1, dtype=np.int64)
    stack_fc = np.empty(n_total + 1, dtype=np.uint8)
    last = m - 2 if collapse else m - 1
    i_leaf = order_arr[m - 1]
    for b in range(B):
        for chunk in range(2):
            if chunk == 1 and (prunable[b] or n_roots == 1):
                break
            lo = 0 if chunk == 0 else 1
            hi = 1 if chunk == 0 else n_roots
            sp = 0
            for ri in range(hi - 1, lo - 1, -1):
                stack_level[sp] = 0
                stack_node[sp] = root_order[ri]
                stack_fc[sp] = 0
                sp += 1
            while sp > 0:
                sp -= 1
                level = stack_level[sp]
                node = stack_node[sp]
                fc = stack_fc[sp]
                flat = level_off[level] + node
                own = 1 if self_paths[b, level] == node else 0
                if desc[flat] - own <= 0:
                    continue
                checks[b] += 1
                i = order_arr[level]
                d_cp = mats3[i, cand_vals[b, i], keys[flat]]
                d_cq = qd[b, i]
                if d_cp > d_cq:
                    continue
                if d_cp < d_cq:
                    fc = 1
                if level == last:
                    if collapse:
                        checks[b] += 1
                        lv = cand_vals[b, i_leaf]
                        if self_paths[b, m - 2] == node:
                            best = amin_ex[node, lv]
                        else:
                            best = amin[node, lv]
                        d_q = qd[b, i_leaf]
                        if (best < d_q) or (fc == 1 and best <= d_q):
                            prunable[b] = True
                    else:
                        if fc == 1:
                            prunable[b] = True
                    continue
                for child in range(cs[flat], ce[flat]):
                    stack_level[sp] = level + 1
                    stack_node[sp] = child
                    stack_fc[sp] = fc
                    sp += 1


def phase2_descend(
    m,
    level_off,
    keys,
    desc_live,
    cs,
    ce,
    mats3,
    order_arr,
    query_flat,
    q_rows_flat,
    e_ids,
    e_vals,
    pq_checks,
    dom_count,
    last_dom,
):
    """Forest ``Prune`` (Algorithm 5) as a per-object DFS over all
    member queries' phase-2 trees at once.

    Check accounting matches :func:`repro.kernels.frontier.page_prune`
    restricted to each query's subtree (live-gated, one check per live
    (object, node) pair), attributed per query via ``query_flat``.
    Emits the identity-aware removal inputs — per-leaf dominator counts
    and the last dominator's record id — for the caller's numpy-side
    ``sole_dominator`` logic, which is shared with the numpy tier.
    """
    E = e_ids.shape[0]
    if E == 0 or m == 0:
        return
    n0 = level_off[1] - level_off[0]
    if n0 == 0:
        return
    n_total = level_off[m]
    stack_level = np.empty(n_total + 1, dtype=np.int64)
    stack_node = np.empty(n_total + 1, dtype=np.int64)
    stack_fc = np.empty(n_total + 1, dtype=np.uint8)
    for e in range(E):
        sp = 0
        for node in range(n0 - 1, -1, -1):
            stack_level[sp] = 0
            stack_node[sp] = node
            stack_fc[sp] = 0
            sp += 1
        while sp > 0:
            sp -= 1
            level = stack_level[sp]
            node = stack_node[sp]
            fc = stack_fc[sp]
            flat = level_off[level] + node
            if desc_live[flat] <= 0:
                continue
            pq_checks[query_flat[flat]] += 1
            i = order_arr[level]
            d_pe = mats3[i, keys[flat], e_vals[e, i]]
            d_pq = q_rows_flat[flat]
            if d_pe > d_pq:
                continue
            if d_pe < d_pq:
                fc = 1
            if level == m - 1:
                if fc == 1:
                    dom_count[node] += 1
                    last_dom[node] = e_ids[e]
                continue
            for child in range(cs[flat], ce[flat]):
                stack_level[sp] = level + 1
                stack_node[sp] = child
                stack_fc[sp] = fc
                sp += 1


# ---------------------------------------------------------------------------
# Compilation, self-check, dispatch.
# ---------------------------------------------------------------------------


def _selfcheck(compiled_p1, compiled_p2) -> None:
    """Run the compiled kernels against the interpreted originals on a
    deterministic fixture; any divergence raises (-> numpy fallback).

    This checks *compilation* fidelity (typing/lowering), not algorithm
    correctness — the latter is pinned against the frontier kernels by
    the differential tests, which run without numba.
    """
    rng = np.random.RandomState(20260808)
    m, card, n = 3, 4, 14
    mats3 = rng.rand(m, card, card)
    for i in range(m):
        np.fill_diagonal(mats3[i], 0.0)
    # A tiny synthetic flattening: level sizes 3 / 6 / 9.
    sizes = [3, 6, 9]
    level_off = np.zeros(m + 1, dtype=np.int64)
    for level in range(m):
        level_off[level + 1] = level_off[level] + sizes[level]
    n_total = int(level_off[m])
    keys = rng.randint(0, card, size=n_total).astype(np.int64)
    desc = rng.randint(0, 4, size=n_total).astype(np.int64)
    cs = np.zeros(n_total, dtype=np.int64)
    ce = np.zeros(n_total, dtype=np.int64)
    for level in range(m - 1):
        bounds = np.sort(rng.randint(0, sizes[level + 1] + 1, size=sizes[level] - 1))
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [sizes[level + 1]]))
        cs[level_off[level] : level_off[level + 1]] = starts
        ce[level_off[level] : level_off[level + 1]] = ends
    order_arr = np.arange(m, dtype=np.int64)
    cand_vals = rng.randint(0, card, size=(n, m)).astype(np.int64)
    qd = rng.rand(n, m)
    self_paths = np.column_stack(
        [rng.randint(0, sizes[level], size=n) for level in range(m)]
    ).astype(np.int64)
    root_order = np.argsort(-desc[: sizes[0]], kind="stable").astype(np.int64)
    amin = rng.rand(sizes[m - 2], card)
    amin_ex = amin + rng.rand(sizes[m - 2], card)
    for collapse in (True, False):
        got_p = np.zeros(n, dtype=np.bool_)
        got_c = np.zeros(n, dtype=np.int64)
        exp_p = np.zeros(n, dtype=np.bool_)
        exp_c = np.zeros(n, dtype=np.int64)
        compiled_p1(
            m, level_off, keys, desc, cs, ce, mats3, order_arr, cand_vals,
            qd, self_paths, root_order, collapse, amin, amin_ex, got_p, got_c,
        )
        phase1_descend(
            m, level_off, keys, desc, cs, ce, mats3, order_arr, cand_vals,
            qd, self_paths, root_order, collapse, amin, amin_ex, exp_p, exp_c,
        )
        if not (np.array_equal(got_p, exp_p) and np.array_equal(got_c, exp_c)):
            raise RuntimeError("jit self-check failed: phase1 kernel diverges")
    nq = 2
    query_flat = rng.randint(0, nq, size=n_total).astype(np.int64)
    q_rows_flat = rng.rand(n_total)
    e_ids = np.arange(n, dtype=np.int64)
    e_vals = cand_vals
    nleaf = sizes[m - 1]
    got = (
        np.zeros(nq, dtype=np.int64),
        np.zeros(nleaf, dtype=np.int64),
        np.full(nleaf, -1, dtype=np.int64),
    )
    exp = (
        np.zeros(nq, dtype=np.int64),
        np.zeros(nleaf, dtype=np.int64),
        np.full(nleaf, -1, dtype=np.int64),
    )
    compiled_p2(
        m, level_off, keys, desc, cs, ce, mats3, order_arr, query_flat,
        q_rows_flat, e_ids, e_vals, *got,
    )
    phase2_descend(
        m, level_off, keys, desc, cs, ce, mats3, order_arr, query_flat,
        q_rows_flat, e_ids, e_vals, *exp,
    )
    if not all(np.array_equal(g, x) for g, x in zip(got, exp)):
        raise RuntimeError("jit self-check failed: phase2 kernel diverges")


def _ensure() -> None:
    """Compile once per process; never raises."""
    if _state["phase"] != "unchecked":
        return
    started = time.perf_counter()
    try:
        numba = _import_numba()
        compiled_p1 = numba.njit(cache=False, nogil=True)(phase1_descend)
        compiled_p2 = numba.njit(cache=False, nogil=True)(phase2_descend)
        _selfcheck(compiled_p1, compiled_p2)
    except Exception as exc:  # ImportError, TypingError, self-check, ...
        _state["phase"] = "fallback"
        _state["kernels"] = None
        _state["reason"] = f"{type(exc).__name__}: {exc}"
    else:
        _state["phase"] = "ready"
        _state["kernels"] = {"phase1": compiled_p1, "phase2": compiled_p2}
        _state["reason"] = None
    _state["compile_seconds"] = time.perf_counter() - started
    if _obs.enabled:
        _obs.observe(
            "repro_kernel_jit_compile_seconds",
            _state["compile_seconds"],
            outcome=_state["phase"],
        )


def jit_ready() -> bool:
    """Whether the compiled tier is usable in this process (compiles on
    first call; False means numba is absent or failed its self-check)."""
    _ensure()
    return _state["phase"] == "ready"


def kernels() -> dict | None:
    """The compiled kernel table, or ``None`` when falling back."""
    _ensure()
    return _state["kernels"]


def compile_seconds() -> float:
    return _state["compile_seconds"]


def status() -> dict:
    """Diagnostic snapshot (the serve stats payload embeds this)."""
    return {
        "phase": _state["phase"],
        "compile_seconds": _state["compile_seconds"],
        "reason": _state["reason"],
    }


def reset() -> None:
    """Forget compilation state (test hook: re-probe after monkeypatch)."""
    _state["phase"] = "unchecked"
    _state["kernels"] = None
    _state["compile_seconds"] = 0.0
    _state["reason"] = None


def effective_tier(backend: str | None) -> str:
    """The concrete kernel tier for a resolved non-python backend:
    ``jit`` when requested-or-auto and the compiled tier is usable,
    else ``numpy`` (the guaranteed-identical fallback)."""
    if backend in ("jit", "auto") and jit_ready():
        return "jit"
    return "numpy"
