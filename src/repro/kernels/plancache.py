"""Process-wide plan cache for immutable compute-backend artifacts.

The numpy backend's expensive structures — the columnar CSR AL-Tree
arrays of the phase-1 batch plan, the collapsed leaf min-tables, the
dissimilarity matrices and the flat scan arrays — depend only on
*(dataset contents, physical layout, memory budget, page size)*, never
on a query.  ``VectorTRS`` already memoises them per instance; this
module lifts that memo to the whole process so the build cost is paid
once per *layout*, not once per algorithm instance:

- a fresh engine over the same dataset (a second executor, a pool
  worker after fork, a re-opened CLI session) finds the plan ready;
- the zero-copy shm layer (:mod:`repro.exec.shm`) imports a published
  plan straight into this cache on the worker side, so process-pool
  workers skip the build entirely.

Keys embed :func:`plan_fingerprint` — a content hash over the layout
entries *and* the dissimilarity matrices — so two datasets that share
records but differ in their non-metric dissimilarities can never serve
each other's artifacts (the engine's ``layout_fingerprint`` hashes only
records, which is fine for result caching but not for plan reuse).

The cache is byte-bounded LRU (default 256 MiB, configurable via
:func:`configure`); sizes come from :func:`artifact_nbytes`, a
conservative walker over the numpy arrays an artifact holds.  All
operations are thread-safe and observable through :mod:`repro.obs`
(``repro_plan_cache_lookups_total{outcome=hit|miss}``,
``repro_plan_cache_evictions_total``, ``repro_plan_cache_bytes`` /
``repro_plan_cache_entries`` gauges).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import hooks as _obs

__all__ = [
    "PlanCache",
    "PlanCacheStats",
    "PlanKey",
    "artifact_nbytes",
    "configure",
    "plan_cache",
    "plan_fingerprint",
]

#: Default capacity of the process-wide cache.
DEFAULT_CAPACITY_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class PlanKey:
    """Identity of one cached artifact.

    ``artifact`` names the kind (``"dissim"``, ``"phase1"``, ``"scan"``);
    ``fingerprint`` is the :func:`plan_fingerprint` of the (dataset,
    layout) pair; ``params`` carries whatever build inputs the artifact
    additionally depends on (budget pages, page bytes) as a flat tuple.
    """

    artifact: str
    fingerprint: str
    params: tuple = ()


@dataclass(frozen=True)
class PlanCacheStats:
    hits: int
    misses: int
    evictions: int
    oversize_skips: int
    entries: int
    bytes: int
    capacity_bytes: int


def plan_fingerprint(dataset, layout) -> str:
    """Content hash of a (dataset, layout) pair for plan keying.

    Covers the dissimilarity structure (matrix bytes for matrix-backed
    attributes, the repr otherwise) plus every layout entry, so a plan
    built for one non-metric space can never answer for another — even
    one over identical records.
    """
    from repro.dissim.matrix import MatrixDissimilarity

    h = hashlib.blake2b(digest_size=16)
    h.update(f"{dataset.name}|{len(layout)}|{dataset.num_attributes}|".encode())
    for d in dataset.space.dissims:
        if isinstance(d, MatrixDissimilarity):
            import numpy as np

            h.update(np.ascontiguousarray(d.matrix, dtype=float).tobytes())
        else:  # non-matrix spaces never reach the vector paths today
            h.update(repr(d).encode())
        h.update(b"|")
    for rid, values in layout:
        h.update(repr((rid, values)).encode())
    return h.hexdigest()


def artifact_nbytes(obj) -> int:
    """Conservative byte size of an artifact: the sum of every distinct
    numpy array reachable from it (lists/tuples/dicts/dataclasses), plus
    a small per-python-object overhead for everything else."""
    import numpy as np

    seen: set[int] = set()
    total = 0
    stack = [obj]
    while stack:
        x = stack.pop()
        if x is None or isinstance(x, (int, float, bool, str, bytes)):
            total += 32
            continue
        if id(x) in seen:
            continue
        seen.add(id(x))
        if isinstance(x, np.ndarray):
            total += int(x.nbytes) + 96
        elif isinstance(x, dict):
            stack.extend(x.keys())
            stack.extend(x.values())
        elif isinstance(x, (list, tuple, set, frozenset)):
            total += 56 + 8 * len(x) if isinstance(x, (list, tuple)) else 56
            stack.extend(x)
        elif hasattr(x, "__dataclass_fields__"):
            stack.extend(getattr(x, f) for f in x.__dataclass_fields__)
        elif hasattr(x, "__slots__"):
            stack.extend(
                getattr(x, s) for s in x.__slots__ if hasattr(x, s)
            )
        else:
            total += 64
    return total


class PlanCache:
    """Byte-bounded, thread-safe LRU of immutable plan artifacts."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES) -> None:
        self.capacity_bytes = int(capacity_bytes)
        self._entries: OrderedDict[PlanKey, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._oversize_skips = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: PlanKey):
        """The cached artifact for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                if _obs.enabled:
                    _obs.inc("repro_plan_cache_lookups_total", 1, outcome="miss")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        if _obs.enabled:
            _obs.inc("repro_plan_cache_lookups_total", 1, outcome="hit")
        return entry[0]

    def put(self, key: PlanKey, value, nbytes: int | None = None) -> None:
        """Insert (or refresh) one artifact. Artifacts larger than the
        whole capacity are skipped rather than wiping the cache."""
        if nbytes is None:
            nbytes = artifact_nbytes(value)
        nbytes = int(nbytes)
        if nbytes > self.capacity_bytes:
            with self._lock:
                self._oversize_skips += 1
            return
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                self._evictions += 1
                evicted += 1
            entries, total = len(self._entries), self._bytes
        if _obs.enabled:
            if evicted:
                _obs.inc("repro_plan_cache_evictions_total", evicted)
            _obs.set_gauge("repro_plan_cache_bytes", float(total))
            _obs.set_gauge("repro_plan_cache_entries", float(entries))

    def get_or_build(self, key: PlanKey, builder):
        """``get`` or build-and-``put`` (the build runs outside the lock;
        concurrent builders may race but converge on identical artifacts —
        they are pure functions of the key)."""
        value = self.get(key)
        if value is not None:
            return value
        value = builder()
        self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
        if _obs.enabled:
            _obs.set_gauge("repro_plan_cache_bytes", 0.0)
            _obs.set_gauge("repro_plan_cache_entries", 0.0)

    def invalidate_fingerprint(self, fingerprint: str) -> tuple[int, int]:
        """Surgically drop every artifact keyed under ``fingerprint``.

        The maintenance layer calls this at compaction time: only plans
        built over the compacted base layout are stale; everything else
        in the process-wide cache (other datasets, other layouts of the
        same dataset) stays warm. Between compactions nothing is dropped
        at all — update epochs ride the overlay, and plan keys embed the
        *base* fingerprint, which mutation batches do not change.

        Returns ``(dropped, retained)`` entry counts.
        """
        with self._lock:
            stale = [k for k in self._entries if k.fingerprint == fingerprint]
            for key in stale:
                _, nbytes = self._entries.pop(key)
                self._bytes -= nbytes
            dropped = len(stale)
            retained = len(self._entries)
            total = self._bytes
        if _obs.enabled:
            if dropped:
                _obs.inc("repro_plan_cache_invalidations_total", dropped)
            _obs.set_gauge("repro_plan_cache_bytes", float(total))
            _obs.set_gauge("repro_plan_cache_entries", float(retained))
        return dropped, retained

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                oversize_skips=self._oversize_skips,
                entries=len(self._entries),
                bytes=self._bytes,
                capacity_bytes=self.capacity_bytes,
            )


#: THE process-wide cache. Modules use :func:`plan_cache` so tests can
#: swap/resize it via :func:`configure`.
_PLAN_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    return _PLAN_CACHE


def configure(capacity_bytes: int) -> PlanCache:
    """Replace the process-wide cache with a fresh one of the given
    capacity (returns it). Existing artifacts are dropped."""
    global _PLAN_CACHE
    _PLAN_CACHE = PlanCache(capacity_bytes)
    return _PLAN_CACHE
