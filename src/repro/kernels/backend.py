"""Backend registry and dispatch.

One small, dependency-free mapping answers "which algorithm class should
actually run?" for every entry point (CLI ``--backend``, the engine's
``backend=`` parameter, ``make_algorithm``): scalar algorithm names pair
with their vectorised variants, and :func:`resolve_algorithm` picks a
side based on the requested backend and — for ``auto`` — whether the
dataset qualifies for array kernels at all.

The registry is name-based on purpose: backends never change *answers*
(the differential suites enforce bit-identical results), so everything
downstream — result caches, layouts, persisted files — keys on the
scalar family name and stays valid whichever backend computed it.
"""

from __future__ import annotations

from repro.errors import AlgorithmError

__all__ = [
    "BACKENDS",
    "available_backends",
    "normalize_backend",
    "numpy_ready",
    "register_variant",
    "resolve_algorithm",
    "scalar_variant",
    "vector_variant",
]

#: The backend names every ``--backend`` / ``backend=`` site accepts.
#: ``jit`` selects the numpy algorithm classes but escalates the fused
#: shared-scan kernels to compiled loops when :mod:`repro.kernels.jit`
#: reports numba importable (graceful numpy fallback otherwise).
BACKENDS = ("python", "numpy", "jit", "auto")

#: scalar algorithm name -> numpy-variant algorithm name.
_VECTOR_OF: dict[str, str] = {}
#: numpy-variant algorithm name -> scalar algorithm name.
_SCALAR_OF: dict[str, str] = {}
#: vector names ``auto`` is allowed to pick unconditionally. Variants
#: that win only on particular workload shapes register a *predicate*
#: instead (see ``_AUTO_WHEN``): VectorBRS, for example, pays per-page
#: batch overheads that only amortise on dense low-cardinality schemas,
#: so ``auto`` upgrades BRS only there (BENCH_core.json records both
#: the demotion measurement and the shape on which it now wins).
_AUTO_OK: set[str] = set()
#: vector name -> predicate(dataset) gating ``auto`` dispatch by
#: workload shape. A predicate variant with no dataset in hand stays
#: scalar (conservative: shape unknown).
_AUTO_WHEN: dict[str, object] = {}


def register_variant(scalar: str, vector: str, *, auto=True) -> None:
    """Declare ``vector`` as the numpy-backend variant of ``scalar``.

    Called at import time by :mod:`repro.core.registry` for each pair;
    idempotent so re-imports are harmless. ``auto`` may be:

    - ``True``  — ``auto`` dispatch may always pick the variant;
    - ``False`` — reachable via explicit ``backend="numpy"`` only;
    - a callable ``predicate(dataset) -> bool`` — ``auto`` picks the
      variant exactly when the predicate accepts the dataset's shape.
    """
    _VECTOR_OF[scalar] = vector
    _SCALAR_OF[vector] = scalar
    _AUTO_OK.discard(vector)
    _AUTO_WHEN.pop(vector, None)
    if callable(auto):
        _AUTO_WHEN[vector] = auto
    elif auto:
        _AUTO_OK.add(vector)


def vector_variant(name: str) -> str | None:
    """The numpy-variant name for ``name`` (``None`` if it has none).
    A name that already *is* a numpy variant maps to itself."""
    if name in _SCALAR_OF:
        return name
    return _VECTOR_OF.get(name)


def scalar_variant(name: str) -> str:
    """The scalar-family name for ``name`` (itself when already scalar)."""
    return _SCALAR_OF.get(name, name)


def numpy_ready() -> bool:
    """Whether the numpy backend can run in this interpreter."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        return False
    return True


def normalize_backend(backend: str | None) -> str | None:
    """Validate a backend name (``None`` means "leave the choice alone")."""
    if backend is None:
        return None
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise AlgorithmError(f"unknown backend {backend!r}; known: {known}")
    return backend


def available_backends(name: str) -> tuple[str, ...]:
    """The backends algorithm ``name`` can honour."""
    if vector_variant(name) is not None and numpy_ready():
        return BACKENDS
    return ("python", "auto")


def resolve_algorithm(name: str, backend: str | None, dataset=None) -> str:
    """Map an algorithm name + backend request to the class name to run.

    - ``None``     — no preference: ``name`` unchanged (legacy behaviour).
    - ``python``   — the scalar family member (vector names are mapped
      back to their scalar counterparts).
    - ``numpy``    — the vector variant; an explicit request for an
      algorithm with no vectorised implementation is an error.
    - ``jit``      — the vector variant too: algorithm *classes* are
      shared between the numpy and jit tiers; the tier split happens
      inside the fused shared-scan kernels (:mod:`repro.kernels.jit`).
    - ``auto``     — the vector variant when one exists, numpy imports,
      ``dataset`` (when given) is fully categorical, and the variant is
      either unconditionally auto-eligible or its shape predicate
      accepts the dataset; else ``name``.
    """
    backend = normalize_backend(backend)
    if backend is None:
        return name
    if backend == "python":
        return scalar_variant(name)
    vector = vector_variant(name)
    if backend in ("numpy", "jit"):
        if vector is None:
            raise AlgorithmError(
                f"algorithm {name!r} has no {backend} backend; "
                f"available backends: {', '.join(available_backends(name))}"
            )
        if not numpy_ready():  # pragma: no cover - numpy is a hard dep today
            raise AlgorithmError(
                f"{backend} backend requested but numpy is not importable"
            )
        return vector
    # auto: upgrade when it is guaranteed safe AND a known win, fall
    # back silently otherwise (explicit backend="numpy" still honours
    # demoted variants).
    if vector is None or not numpy_ready():
        return scalar_variant(name)
    if dataset is not None and not dataset.space.is_fully_categorical():
        return scalar_variant(name)
    if vector in _AUTO_OK:
        return vector
    predicate = _AUTO_WHEN.get(vector)
    if predicate is not None and dataset is not None and predicate(dataset):
        return vector
    return scalar_variant(name)
