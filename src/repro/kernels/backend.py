"""Backend registry and dispatch.

One small, dependency-free mapping answers "which algorithm class should
actually run?" for every entry point (CLI ``--backend``, the engine's
``backend=`` parameter, ``make_algorithm``): scalar algorithm names pair
with their vectorised variants, and :func:`resolve_algorithm` picks a
side based on the requested backend and — for ``auto`` — whether the
dataset qualifies for array kernels at all.

The registry is name-based on purpose: backends never change *answers*
(the differential suites enforce bit-identical results), so everything
downstream — result caches, layouts, persisted files — keys on the
scalar family name and stays valid whichever backend computed it.
"""

from __future__ import annotations

from repro.errors import AlgorithmError

__all__ = [
    "BACKENDS",
    "available_backends",
    "normalize_backend",
    "numpy_ready",
    "register_variant",
    "resolve_algorithm",
    "scalar_variant",
    "vector_variant",
]

#: The backend names every ``--backend`` / ``backend=`` site accepts.
BACKENDS = ("python", "numpy", "auto")

#: scalar algorithm name -> numpy-variant algorithm name.
_VECTOR_OF: dict[str, str] = {}
#: numpy-variant algorithm name -> scalar algorithm name.
_SCALAR_OF: dict[str, str] = {}
#: vector names ``auto`` is allowed to pick. Registration opts out the
#: variants that are *correct* but not a default win (BENCH_core.json
#: showed VectorBRS at ~0.46x of the scalar path: BRS re-scans dominate
#: and its per-page batches are too small to amortise the numpy
#: dispatch), so ``auto`` only upgrades where it is also a speedup.
_AUTO_OK: set[str] = set()


def register_variant(scalar: str, vector: str, *, auto: bool = True) -> None:
    """Declare ``vector`` as the numpy-backend variant of ``scalar``.

    Called at import time by :mod:`repro.core.registry` for each pair;
    idempotent so re-imports are harmless. ``auto=False`` keeps the
    variant reachable via an explicit ``backend="numpy"`` request but
    excludes it from ``auto`` dispatch.
    """
    _VECTOR_OF[scalar] = vector
    _SCALAR_OF[vector] = scalar
    if auto:
        _AUTO_OK.add(vector)
    else:
        _AUTO_OK.discard(vector)


def vector_variant(name: str) -> str | None:
    """The numpy-variant name for ``name`` (``None`` if it has none).
    A name that already *is* a numpy variant maps to itself."""
    if name in _SCALAR_OF:
        return name
    return _VECTOR_OF.get(name)


def scalar_variant(name: str) -> str:
    """The scalar-family name for ``name`` (itself when already scalar)."""
    return _SCALAR_OF.get(name, name)


def numpy_ready() -> bool:
    """Whether the numpy backend can run in this interpreter."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        return False
    return True


def normalize_backend(backend: str | None) -> str | None:
    """Validate a backend name (``None`` means "leave the choice alone")."""
    if backend is None:
        return None
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise AlgorithmError(f"unknown backend {backend!r}; known: {known}")
    return backend


def available_backends(name: str) -> tuple[str, ...]:
    """The backends algorithm ``name`` can honour."""
    if vector_variant(name) is not None and numpy_ready():
        return BACKENDS
    return ("python", "auto")


def resolve_algorithm(name: str, backend: str | None, dataset=None) -> str:
    """Map an algorithm name + backend request to the class name to run.

    - ``None``     — no preference: ``name`` unchanged (legacy behaviour).
    - ``python``   — the scalar family member (vector names are mapped
      back to their scalar counterparts).
    - ``numpy``    — the vector variant; an explicit request for an
      algorithm with no vectorised implementation is an error.
    - ``auto``     — the vector variant when one exists, numpy imports,
      and ``dataset`` (when given) is fully categorical; else ``name``.
    """
    backend = normalize_backend(backend)
    if backend is None:
        return name
    if backend == "python":
        return scalar_variant(name)
    vector = vector_variant(name)
    if backend == "numpy":
        if vector is None:
            raise AlgorithmError(
                f"algorithm {name!r} has no numpy backend; "
                f"available backends: {', '.join(available_backends(name))}"
            )
        if not numpy_ready():  # pragma: no cover - numpy is a hard dep today
            raise AlgorithmError("numpy backend requested but numpy is not importable")
        return vector
    # auto: upgrade when it is guaranteed safe AND a known win, fall
    # back silently otherwise (explicit backend="numpy" still honours
    # demoted variants).
    if vector is None or vector not in _AUTO_OK or not numpy_ready():
        return scalar_variant(name)
    if dataset is not None and not dataset.space.is_fully_categorical():
        return scalar_variant(name)
    return vector
