"""Frontier-based array kernels for the AL-Tree traversals.

The scalar ``is_prunable`` / ``prune_tree`` (Algorithms 4 and 5) walk
the tree one node per Python iteration. The kernels here process a whole
*frontier* — every (traversal, node) pair alive at one tree level — per
step: each of the ``m`` levels costs a handful of numpy gathers and
boolean reductions over flat arrays, whatever the frontier size.

Both kernels are exact in their *decisions*: a candidate is reported
prunable, and a tree object is removed, in precisely the cases the
scalar traversals decide — the group-level elimination (descend only
while ``d <= d_q``), the ``FoundCloser`` strictness flag, soft-removed
self paths and record-identity exclusion are all reproduced. What
changes is the *order* of work, and therefore the ``checks_*``
accounting: the scalar code visits promising subtrees first and aborts
at the first pruner leaf, while a frontier sweep finishes each level it
starts. Checks are counted at (traversal, live-child) granularity — the
array analogue of Algorithm 4's line-9 counter — so vectorised runs
report *at least* as many checks as scalar runs (see
``docs/performance.md`` for the accounting contract).

Gather caching: everything that depends only on (query, batch) is
computed once and passed in — :func:`query_distances` (phase 1's ``qd``
vectors for all batch candidates) and :func:`query_node_rows` (phase 2's
per-node ``d(u, q)`` thresholds) — instead of once per (object, query)
pair as in the scalar code.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.columnar import ColumnarALTree

__all__ = [
    "batch_is_prunable",
    "candidate_paths",
    "leaf_min_tables",
    "page_prune",
    "query_distances",
    "query_node_rows",
    "scan_prune",
]


def query_distances(
    mats: list[np.ndarray], values: np.ndarray, query: tuple
) -> np.ndarray:
    """``qd[b, i] = d_i(values[b, i], q_i)`` for a whole candidate batch —
    one gather per attribute per (query, batch)."""
    if values.size == 0:
        return np.zeros((0, len(mats)))
    return np.column_stack(
        [mats[i][values[:, i], query[i]] for i in range(len(mats))]
    )


def query_node_rows(
    col: ColumnarALTree, mats: list[np.ndarray], order: list[int], query: tuple
) -> list[np.ndarray]:
    """Per-level ``d_i(key, q_i)`` thresholds for every tree node — the
    phase-2 quantities that depend only on (tree, query), gathered once
    and reused for every scanned database object."""
    return [
        mats[order[level]][col.keys[level], query[order[level]]]
        for level in range(col.num_levels)
    ]


def candidate_paths(col: ColumnarALTree, leaf_indices: np.ndarray) -> np.ndarray:
    """``paths[b, l]`` = index (in level ``l``) of candidate ``b``'s own
    path node — the array form of ``soft_remove``: the kernels subtract
    one descendant along this path so a candidate never prunes itself."""
    m = col.num_levels
    paths = np.empty((leaf_indices.size, m), dtype=np.intp)
    if m == 0:
        return paths
    idx = np.asarray(leaf_indices, dtype=np.intp)
    for level in range(m - 1, -1, -1):
        paths[:, level] = idx
        if level > 0:
            idx = col.parent[level][idx]
    return paths


def leaf_min_tables(
    col: ColumnarALTree, mats: list[np.ndarray], order: list[int]
) -> tuple[np.ndarray, np.ndarray] | None:
    """Collapsed-leaf-level lookup tables, query-independent per batch.

    For each last-internal-level node ``u`` and each value ``v`` of the
    leaf attribute:

    - ``amin[u, v]``   — the smallest ``d(v, key)`` over ``u``'s leaves.
    - ``amin_ex[u, v]`` — the same minimum *excluding* the leaf whose key
      is ``v`` itself (leaf keys are unique per parent), i.e. the
      soft-removed view a candidate sees under its own parent.

    With these, :func:`batch_is_prunable` never expands the leaf level —
    the largest frontier by far: whether a surviving (candidate, parent)
    pair reaches a pruner leaf reduces to one table lookup against
    ``qd``. Returns ``None`` for trees of depth < 2 (no leaf parent
    level to collapse).
    """
    m = col.num_levels
    if m < 2 or col.keys[m - 1].size == 0:
        return None
    i = order[m - 1]
    keys = col.keys[m - 1]
    # d(v, key) for every leaf, all values of the leaf attribute at once.
    dists = mats[i][:, keys]  # card x nleaf
    starts = col.child_start[m - 2]
    amin = np.minimum.reduceat(dists, starts, axis=1).T
    masked = np.where(
        keys[np.newaxis, :] == np.arange(mats[i].shape[0])[:, np.newaxis],
        np.inf,
        dists,
    )
    amin_ex = np.minimum.reduceat(masked, starts, axis=1).T
    return amin, amin_ex


def _expand(
    col: ColumnarALTree, level: int, node_idx: np.ndarray, *companions: np.ndarray
):
    """Replace each frontier pair's node with its children (CSR slice
    expansion), repeating the companion arrays alongside."""
    starts = col.child_start[level][node_idx]
    counts = col.child_end[level][node_idx] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.intp)
        return empty, tuple(c[:0] for c in companions)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    children = np.repeat(starts, counts) + offsets
    return children, tuple(np.repeat(c, counts) for c in companions)


def batch_is_prunable(
    col: ColumnarALTree,
    mats: list[np.ndarray],
    order: list[int],
    cand_vals: np.ndarray,
    qd: np.ndarray,
    self_paths: np.ndarray,
    leaf_mins: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 4 for a whole candidate batch at once.

    For each candidate ``b`` (rows of ``cand_vals``), decides whether any
    *other* object in the flattened tree dominates the query with respect
    to it. ``qd`` comes from :func:`query_distances`, ``self_paths`` from
    :func:`candidate_paths` (each candidate's one soft-removed entry).

    Returns ``(prunable, checks)``: boolean and per-candidate check-count
    arrays of length ``B``.

    The sweep is chunked by *root subtree*, most-promising first — the
    largest root (by descendant count, the array analogue of Algorithm
    4's guided search) runs alone, then the remaining roots together:
    candidates the big subtree proves prunable (in practice nearly all)
    never pay for the rest, while the tail chunk amortises the per-level
    numpy dispatch over every leftover root at once. With ``leaf_mins``
    (from :func:`leaf_min_tables`) the leaf level — the widest frontier
    — is never expanded at all: reaching a pruner leaf reduces to a
    lookup in the collapsed min-distance tables. Together these recover
    most of the scalar early-abort saving while keeping every step a
    whole-frontier array operation.
    """
    B = cand_vals.shape[0]
    prunable = np.zeros(B, dtype=bool)
    checks = np.zeros(B, dtype=np.int64)
    m = col.num_levels
    if B == 0 or m == 0 or col.keys[0].size == 0:
        return prunable, checks
    collapse = leaf_mins is not None and m >= 2
    last = m - 2 if collapse else m - 1
    i_leaf = order[m - 1]
    undecided = np.arange(B, dtype=np.intp)
    roots = np.argsort(-col.desc[0], kind="stable").astype(np.intp)
    for chunk in (roots[:1], roots[1:]):
        if undecided.size == 0 or chunk.size == 0:
            break
        cand_idx = np.tile(undecided, chunk.size)
        node_idx = np.repeat(chunk, undecided.size)
        found_closer = np.zeros(cand_idx.size, dtype=bool)
        for level in range(last + 1):
            i = order[level]
            # Effective descendants: the candidate's own path carries one
            # fewer object (its soft-removed self).
            live = (
                col.desc[level][node_idx]
                - (self_paths[cand_idx, level] == node_idx)
            ) > 0
            checks += np.bincount(cand_idx[live], minlength=B)
            d_cp = mats[i][cand_vals[cand_idx, i], col.keys[level][node_idx]]
            d_cq = qd[cand_idx, i]
            keep = live & (d_cp <= d_cq)
            found_closer = found_closer[keep] | (d_cp[keep] < d_cq[keep])
            cand_idx = cand_idx[keep]
            node_idx = node_idx[keep]
            if cand_idx.size == 0:
                break
            if level == last:
                if collapse:
                    # Collapsed leaf probe: one check per surviving
                    # (candidate, leaf-parent) pair, against the batch's
                    # min-distance tables (self-excluding under the
                    # candidate's own parent).
                    checks += np.bincount(cand_idx, minlength=B)
                    amin, amin_ex = leaf_mins
                    own = self_paths[cand_idx, m - 2] == node_idx
                    leaf_vals = cand_vals[cand_idx, i_leaf]
                    best = np.where(
                        own,
                        amin_ex[node_idx, leaf_vals],
                        amin[node_idx, leaf_vals],
                    )
                    d_q = qd[cand_idx, i_leaf]
                    hit = np.where(found_closer, best <= d_q, best < d_q)
                    prunable[cand_idx[hit]] = True
                else:
                    # Leaves reached with FoundCloser set are pruners.
                    prunable[cand_idx[found_closer]] = True
                break
            node_idx, (cand_idx, found_closer) = _expand(
                col, level, node_idx, cand_idx, found_closer
            )
        undecided = undecided[~prunable[undecided]]
    return prunable, checks


def page_prune(
    col: ColumnarALTree,
    mats: list[np.ndarray],
    order: list[int],
    q_rows: list[np.ndarray],
    e_ids: np.ndarray,
    e_vals: np.ndarray,
    alive: np.ndarray,
    desc_live: list[np.ndarray],
) -> tuple[np.ndarray, list[np.ndarray], np.ndarray]:
    """Algorithm 5 for a whole page of scanned database objects at once.

    Removes from the (flattened) tree every entry ``x`` such that some
    scanned object ``e`` dominates the query with respect to ``x`` —
    except entries whose record id *is* that ``e`` (identity, not value:
    an object never prunes itself, but duplicates of it are removed).
    ``q_rows`` comes from :func:`query_node_rows`; ``alive`` and
    ``desc_live`` carry the tree's mutable state between pages.

    Returns ``(alive, desc_live, checks)`` — the updated entry mask, the
    recomputed per-level live counts, and per-scanned-object check
    counts.
    """
    E = e_ids.size
    checks = np.zeros(E, dtype=np.int64)
    m = col.num_levels
    if E == 0 or m == 0 or col.keys[0].size == 0 or not alive.any():
        return alive, desc_live, checks
    n0 = col.keys[0].size
    e_idx = np.repeat(np.arange(E, dtype=np.intp), n0)
    node_idx = np.tile(np.arange(n0, dtype=np.intp), E)
    found_closer = np.zeros(e_idx.size, dtype=bool)
    doomed_leaves = np.zeros(0, dtype=np.intp)
    doomed_e = np.zeros(0, dtype=np.intp)
    for level in range(m):
        i = order[level]
        live = desc_live[level][node_idx] > 0
        checks += np.bincount(e_idx[live], minlength=E)
        d_pe = mats[i][col.keys[level][node_idx], e_vals[e_idx, i]]
        d_pq = q_rows[level][node_idx]
        keep = live & (d_pe <= d_pq)
        found_closer = found_closer[keep] | (d_pe[keep] < d_pq[keep])
        e_idx = e_idx[keep]
        node_idx = node_idx[keep]
        if e_idx.size == 0:
            break
        if level == m - 1:
            doomed_leaves = node_idx[found_closer]
            doomed_e = e_idx[found_closer]
            break
        node_idx, (e_idx, found_closer) = _expand(
            col, level, node_idx, e_idx, found_closer
        )
    if doomed_leaves.size == 0:
        return alive, desc_live, checks
    # Identity-aware removal. An entry of a dominated leaf survives only
    # if its record id equals the *sole* dominator's id: with two or more
    # dominators, some e differs from the entry's id and removes it.
    nleaf = col.keys[m - 1].size
    dom_count = np.bincount(doomed_leaves, minlength=nleaf)
    sole_dominator = np.full(nleaf, -1, dtype=np.intp)
    sole_dominator[doomed_leaves] = e_ids[doomed_e]
    lc = dom_count[col.entry_leaf]
    removed = alive & (
        (lc >= 2)
        | ((lc == 1) & (col.entry_ids != sole_dominator[col.entry_leaf]))
    )
    if removed.any():
        alive = alive & ~removed
        desc_live = col.live_descendants(alive)
    return alive, desc_live, checks


def scan_prune(
    col: ColumnarALTree,
    mats: list[np.ndarray],
    order: list[int],
    q_rows: list[np.ndarray],
    e_ids: np.ndarray,
    e_vals: np.ndarray,
    e_page: np.ndarray,
    chunk: int = 2048,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 5 for the *entire data scan* in one frontier sweep.

    Phase 2's removals are value-based and monotone, so whether (and on
    which page) a tree entry dies is independent of processing order: it
    is removed by the earliest-scanned object that dominates the query
    with respect to it and is not the entry's own record. This kernel
    computes exactly that — ``first_kill[j]`` is the page index of entry
    ``j``'s first identity-valid dominator, or ``num_pages`` when none
    exists — in one descent over all (object, node) pairs, instead of one
    :func:`page_prune` call per page. The caller then derives the precise
    page at which the scalar scan would have found its tree empty (the
    max of the first-kill pages when every entry dies) and replays the
    charged scan to that same page, keeping IO bit-identical to TRS.

    ``e_ids`` / ``e_vals`` / ``e_page`` describe the file in scan order;
    ``chunk`` bounds peak frontier memory. Also returns per-scanned-object
    check counts at (object, node) frontier granularity; objects on pages
    the scalar scan never reads must be excluded by the caller.
    """
    m = col.num_levels
    n_entries = col.entry_ids.size
    E = e_ids.size
    num_pages = int(e_page[-1]) + 1 if E else 0
    first_kill = np.full(n_entries, num_pages, dtype=np.intp)
    checks = np.zeros(E, dtype=np.int64)
    if E == 0 or n_entries == 0 or m == 0 or col.keys[0].size == 0:
        return first_kill, checks
    n0 = col.keys[0].size
    for start in range(0, E, chunk):
        stop = min(start + chunk, E)
        e_idx = np.repeat(np.arange(start, stop, dtype=np.intp), n0)
        node_idx = np.tile(np.arange(n0, dtype=np.intp), stop - start)
        found_closer = np.zeros(e_idx.size, dtype=bool)
        for level in range(m):
            i = order[level]
            checks += np.bincount(e_idx, minlength=E)
            d_pe = mats[i][col.keys[level][node_idx], e_vals[e_idx, i]]
            d_pq = q_rows[level][node_idx]
            keep = d_pe <= d_pq
            found_closer = found_closer[keep] | (d_pe[keep] < d_pq[keep])
            e_idx = e_idx[keep]
            node_idx = node_idx[keep]
            if e_idx.size == 0:
                break
            if level == m - 1:
                leaves = node_idx[found_closer]
                dooming_e = e_idx[found_closer]
                counts = col.leaf_count[leaves]
                total = int(counts.sum())
                if total:
                    offsets = np.arange(total) - np.repeat(
                        np.cumsum(counts) - counts, counts
                    )
                    entry_idx = np.repeat(col.leaf_start[leaves], counts) + offsets
                    e_rep = np.repeat(dooming_e, counts)
                    # Identity, not value: an object never kills its own
                    # entry, but duplicates of it do.
                    valid = col.entry_ids[entry_idx] != e_ids[e_rep]
                    np.minimum.at(
                        first_kill, entry_idx[valid], e_page[e_rep[valid]]
                    )
                break
            node_idx, (e_idx, found_closer) = _expand(
                col, level, node_idx, e_idx, found_closer
            )
    return first_kill, checks
