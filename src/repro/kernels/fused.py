"""Fused multi-query kernels: one traversal pass per planner group.

The per-query shared-scan path (PR 4/5) already shares *IO* across a
planner group, but still pays one python-level kernel invocation per
(query, batch) in phase 1 and per (query, page) in phase 2 — at 125
queries that dispatch dominates. The fused tier removes it:

- **Phase 1** stacks the group's query-distance columns into one
  ``(candidates x queries, m)`` matrix and runs a *single*
  :func:`~repro.kernels.frontier.batch_is_prunable` sweep over the
  stacked candidates. This is exact, not approximate: the frontier
  kernel decides and counts each candidate row independently (fixed
  biggest-root-first chunking, per-row undecided filtering), so row
  ``(c, q)`` of the stacked call reproduces bit-for-bit what candidate
  ``c`` produced in query ``q``'s solo call — including its check
  count, which keeps the per-query ``checks`` decomposition summing to
  the scalar accounting.

- **Phase 2** concatenates the group's per-query survivor trees into
  one *forest* (a valid :class:`~repro.kernels.columnar.ColumnarALTree`
  whose level-0 nodes are every member tree's roots) and prunes all of
  them with one frontier descent per page. Trees never share nodes, so
  the descent restricted to query ``q``'s subtree is exactly ``q``'s
  solo :func:`~repro.kernels.frontier.page_prune`; per-level ownership
  arrays attribute each check to its query.

Both shapes also admit the optional compiled tier
(:mod:`repro.kernels.jit`), which replaces the level-synchronous numpy
sweeps with per-row DFS loops carrying identical accounting.

The fused tier consumes the same cached ``_Phase1Batch`` bundles as the
per-query path (same :class:`~repro.kernels.plancache.PlanKey`), so
plan-cache hits, shared-memory imports and the serve micro-batcher all
feed it with zero plumbing changes.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.columnar import ColumnarALTree
from repro.kernels.frontier import _expand, batch_is_prunable

__all__ = [
    "Forest",
    "build_forest",
    "flatten_col",
    "fused_groups_run",
    "fused_page_prune",
    "fused_phase1",
    "note_fused_group",
    "pad_matrices",
    "stacked_query_distances",
]

#: Process-local count of fused group runs (the serve stats payload
#: reads this directly; the obs counter mirrors it when enabled).
_FUSED_GROUPS_RUN = 0


def note_fused_group() -> None:
    global _FUSED_GROUPS_RUN
    _FUSED_GROUPS_RUN += 1


def fused_groups_run() -> int:
    return _FUSED_GROUPS_RUN


def pad_matrices(mats: list[np.ndarray]) -> np.ndarray:
    """Stack the per-attribute dissimilarity matrices into one padded
    ``(m, maxcard, maxcard)`` float64 block (what the compiled kernels
    index); padding entries are never read."""
    m = len(mats)
    maxc = max((mat.shape[0] for mat in mats), default=0)
    out = np.zeros((m, maxc, maxc), dtype=np.float64)
    for i, mat in enumerate(mats):
        c = mat.shape[0]
        out[i, :c, :c] = mat
    return out


def flatten_col(col: ColumnarALTree):
    """Concatenate a flattening's per-level arrays for the compiled
    kernels: ``(level_off, keys, desc, child_start, child_end)`` with
    ``level_off[l]`` the flat offset of level ``l`` (child indices stay
    level-local, as in the CSR layout)."""
    m = col.num_levels
    level_off = np.zeros(m + 1, dtype=np.int64)
    for level in range(m):
        level_off[level + 1] = level_off[level] + col.keys[level].size
    n_total = int(level_off[m])
    keys = np.zeros(n_total, dtype=np.int64)
    desc = np.zeros(n_total, dtype=np.int64)
    cs = np.zeros(n_total, dtype=np.int64)
    ce = np.zeros(n_total, dtype=np.int64)
    for level in range(m):
        lo, hi = level_off[level], level_off[level + 1]
        keys[lo:hi] = col.keys[level]
        desc[lo:hi] = col.desc[level]
        if level < m - 1:
            cs[lo:hi] = col.child_start[level]
            ce[lo:hi] = col.child_end[level]
    return level_off, keys, desc, cs, ce


def stacked_query_distances(
    mats: list[np.ndarray], values: np.ndarray, queries: np.ndarray
) -> np.ndarray:
    """``qd[b, j, i] = d_i(values[b, i], queries[j, i])`` — the whole
    group's query-distance columns in one gather per attribute."""
    b = values.shape[0]
    nq = queries.shape[0]
    m = len(mats)
    out = np.empty((b, nq, m), dtype=np.float64)
    for i in range(m):
        out[:, :, i] = mats[i][values[:, i][:, None], queries[None, :, i]]
    return out


def fused_phase1(
    pb,
    mats: list[np.ndarray],
    order,
    queries: np.ndarray,
    *,
    tier: str = "numpy",
    mats3: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Phase 1 of every member query against one cached batch bundle.

    ``pb`` is the per-query path's ``_Phase1Batch`` (plan-cache / shm
    codec unchanged). Returns ``(survive, checks)`` — both
    ``(batch, queries)`` — where column ``j`` is bit-identical to what
    the per-query sweep produces for ``queries[j]``.
    """
    b = len(pb.entries)
    nq = queries.shape[0]
    m = len(mats)
    prunable = np.zeros((b, nq), dtype=bool)
    checks = np.zeros((b, nq), dtype=np.int64)
    if b == 0:
        return ~prunable, checks
    qd_all = stacked_query_distances(mats, pb.vals, queries)
    if pb.dup.any():
        # Duplicate fast path, stacked: any positive query distance
        # prunes, at the attribute position the scalar loop stops at.
        positive = qd_all[pb.dup] > 0.0
        hit = positive.any(axis=2)
        prunable[pb.dup] = hit
        checks[pb.dup] = np.where(hit, np.argmax(positive, axis=2) + 1, m)
    if pb.rest.size:
        R = pb.rest.size
        vals_f = np.repeat(pb.rest_vals, nq, axis=0)
        qd_f = qd_all[pb.rest].reshape(R * nq, m)
        paths_f = np.repeat(pb.rest_paths, nq, axis=0)
        pr_f = ck_f = None
        if tier == "jit":
            from repro.kernels import jit as _jit

            kerns = _jit.kernels()
            if kerns is not None and pb.col.keys and pb.col.keys[0].size:
                level_off, keys, desc, cs, ce = flatten_col(pb.col)
                if mats3 is None:
                    mats3 = pad_matrices(mats)
                collapse = pb.leaf_mins is not None and m >= 2
                if collapse:
                    amin, amin_ex = pb.leaf_mins
                else:
                    amin = amin_ex = np.zeros((1, 1), dtype=np.float64)
                root_order = np.argsort(
                    -pb.col.desc[0], kind="stable"
                ).astype(np.int64)
                pr_f = np.zeros(R * nq, dtype=np.bool_)
                ck_f = np.zeros(R * nq, dtype=np.int64)
                kerns["phase1"](
                    m,
                    level_off,
                    keys,
                    desc,
                    cs,
                    ce,
                    mats3,
                    np.asarray(order, dtype=np.int64),
                    vals_f.astype(np.int64, copy=False),
                    qd_f,
                    paths_f.astype(np.int64, copy=False),
                    root_order,
                    collapse,
                    np.asarray(amin, dtype=np.float64),
                    np.asarray(amin_ex, dtype=np.float64),
                    pr_f,
                    ck_f,
                )
        if pr_f is None:
            pr_f, ck_f = batch_is_prunable(
                pb.col,
                mats,
                order,
                vals_f,
                qd_f,
                paths_f,
                leaf_mins=pb.leaf_mins,
            )
        prunable[pb.rest] = pr_f.reshape(R, nq)
        checks[pb.rest] = ck_f.reshape(R, nq)
    return ~prunable, checks


class Forest:
    """The group's phase-2 trees concatenated into one flattening.

    ``col`` is a plain :class:`ColumnarALTree` over all member trees
    (so :meth:`~ColumnarALTree.live_descendants` just works);
    ``query_of``/``entry_query`` map every node/entry back to its
    member position, ``qis`` maps positions to batch query indices.
    ``alive``/``desc_live`` are the mutable between-page state.
    """

    __slots__ = (
        "col",
        "qis",
        "q_rows",
        "query_of",
        "entry_query",
        "alive",
        "desc_live",
        "flat",
        "q_rows_flat",
        "query_flat",
    )

    def __init__(self, col, qis, q_rows, query_of, entry_query) -> None:
        self.col = col
        self.qis = qis
        self.q_rows = q_rows
        self.query_of = query_of
        self.entry_query = entry_query
        self.alive = np.ones(col.entry_ids.size, dtype=bool)
        self.desc_live = col.live_descendants(self.alive)
        self.flat = None  # lazily-built compiled-tier arrays
        self.q_rows_flat = None
        self.query_flat = None

    @property
    def live_total(self) -> int:
        return int(self.desc_live[0].sum()) if self.desc_live else 0

    def survivors(self):
        """Yield ``(qi, record_ids)`` per member query, in member order."""
        for j, qi in enumerate(self.qis):
            mask = self.alive & (self.entry_query == j)
            yield qi, self.col.entry_ids[mask]


def build_forest(items) -> Forest | None:
    """Concatenate ``(qi, col, q_rows)`` member trees into a
    :class:`Forest`; members with nothing to prune are skipped (they
    contribute zero checks either way). Returns ``None`` for an empty
    group — the caller keeps the scan-loop shape so IO charging is
    unchanged."""
    items = [
        (qi, col, q_rows)
        for qi, col, q_rows in items
        if col.keys and col.keys[0].size and col.entry_ids.size
    ]
    if not items:
        return None
    m = items[0][1].num_levels
    keys, desc, parent, child_start, child_end = [], [], [], [], []
    q_rows, query_of = [], []
    node_off = np.zeros((m, len(items) + 1), dtype=np.intp)
    for level in range(m):
        for j, (_qi, col, _qr) in enumerate(items):
            node_off[level, j + 1] = node_off[level, j] + col.keys[level].size
    for level in range(m):
        keys.append(np.concatenate([col.keys[level] for _, col, _ in items]))
        desc.append(np.concatenate([col.desc[level] for _, col, _ in items]))
        if level == 0:
            parent.append(np.zeros(keys[0].size, dtype=np.intp))
        else:
            parent.append(
                np.concatenate(
                    [
                        col.parent[level] + node_off[level - 1, j]
                        for j, (_, col, _) in enumerate(items)
                    ]
                )
            )
        if level < m - 1:
            child_start.append(
                np.concatenate(
                    [
                        col.child_start[level] + node_off[level + 1, j]
                        for j, (_, col, _) in enumerate(items)
                    ]
                )
            )
            child_end.append(
                np.concatenate(
                    [
                        col.child_end[level] + node_off[level + 1, j]
                        for j, (_, col, _) in enumerate(items)
                    ]
                )
            )
        q_rows.append(np.concatenate([qr[level] for _, _, qr in items]))
        query_of.append(
            np.concatenate(
                [
                    np.full(col.keys[level].size, j, dtype=np.intp)
                    for j, (_, col, _) in enumerate(items)
                ]
            )
        )
    entry_off = np.zeros(len(items) + 1, dtype=np.intp)
    for j, (_qi, col, _qr) in enumerate(items):
        entry_off[j + 1] = entry_off[j] + col.entry_ids.size
    leaf_off = node_off[m - 1]
    col = ColumnarALTree.from_arrays(
        keys=keys,
        desc=desc,
        parent=parent,
        child_start=child_start,
        child_end=child_end,
        leaf_start=np.concatenate(
            [c.leaf_start + entry_off[j] for j, (_, c, _) in enumerate(items)]
        ),
        leaf_count=np.concatenate([c.leaf_count for _, c, _ in items]),
        entry_ids=np.concatenate([c.entry_ids for _, c, _ in items]),
        entry_leaf=np.concatenate(
            [c.entry_leaf + leaf_off[j] for j, (_, c, _) in enumerate(items)]
        ),
    )
    entry_query = np.concatenate(
        [
            np.full(c.entry_ids.size, j, dtype=np.intp)
            for j, (_, c, _) in enumerate(items)
        ]
    )
    return Forest(
        col, tuple(qi for qi, _, _ in items), q_rows, query_of, entry_query
    )


def fused_page_prune(
    forest: Forest,
    mats: list[np.ndarray],
    order,
    e_ids: np.ndarray,
    e_vals: np.ndarray,
    *,
    tier: str = "numpy",
    mats3: np.ndarray | None = None,
) -> np.ndarray:
    """One page of scanned objects against the whole forest.

    Mutates ``forest.alive``/``forest.desc_live`` exactly as per-query
    :func:`~repro.kernels.frontier.page_prune` calls would, and returns
    per-member check counts (index = member position in
    ``forest.qis``).
    """
    col = forest.col
    m = col.num_levels
    nq = len(forest.qis)
    pq_checks = np.zeros(nq, dtype=np.int64)
    E = e_ids.size
    if E == 0 or m == 0 or not forest.alive.any():
        return pq_checks
    nleaf = col.keys[m - 1].size
    if tier == "jit":
        from repro.kernels import jit as _jit

        kerns = _jit.kernels()
        if kerns is not None:
            if forest.flat is None:
                forest.flat = flatten_col(col)
                forest.q_rows_flat = np.concatenate(forest.q_rows).astype(
                    np.float64, copy=False
                )
                forest.query_flat = np.concatenate(forest.query_of).astype(
                    np.int64, copy=False
                )
            level_off, keys, _desc, cs, ce = forest.flat
            desc_live_flat = np.concatenate(forest.desc_live).astype(
                np.int64, copy=False
            )
            if mats3 is None:
                mats3 = pad_matrices(mats)
            dom_count = np.zeros(nleaf, dtype=np.int64)
            last_dom = np.full(nleaf, -1, dtype=np.int64)
            kerns["phase2"](
                m,
                level_off,
                keys,
                desc_live_flat,
                cs,
                ce,
                mats3,
                np.asarray(order, dtype=np.int64),
                forest.query_flat,
                forest.q_rows_flat,
                e_ids.astype(np.int64, copy=False),
                e_vals.astype(np.int64, copy=False),
                pq_checks,
                dom_count,
                last_dom,
            )
            _apply_removal(forest, dom_count, last_dom)
            return pq_checks
    # numpy tier: one level-synchronous descent over the forest.
    n0 = col.keys[0].size
    e_idx = np.repeat(np.arange(E, dtype=np.intp), n0)
    node_idx = np.tile(np.arange(n0, dtype=np.intp), E)
    found_closer = np.zeros(e_idx.size, dtype=bool)
    doomed_leaves = np.zeros(0, dtype=np.intp)
    doomed_e = np.zeros(0, dtype=np.intp)
    for level in range(m):
        i = order[level]
        live = forest.desc_live[level][node_idx] > 0
        pq_checks += np.bincount(
            forest.query_of[level][node_idx[live]], minlength=nq
        )
        d_pe = mats[i][col.keys[level][node_idx], e_vals[e_idx, i]]
        d_pq = forest.q_rows[level][node_idx]
        keep = live & (d_pe <= d_pq)
        found_closer = found_closer[keep] | (d_pe[keep] < d_pq[keep])
        e_idx = e_idx[keep]
        node_idx = node_idx[keep]
        if e_idx.size == 0:
            break
        if level == m - 1:
            doomed_leaves = node_idx[found_closer]
            doomed_e = e_idx[found_closer]
            break
        node_idx, (e_idx, found_closer) = _expand(
            col, level, node_idx, e_idx, found_closer
        )
    if doomed_leaves.size:
        dom_count = np.bincount(doomed_leaves, minlength=nleaf)
        last_dom = np.full(nleaf, -1, dtype=np.intp)
        last_dom[doomed_leaves] = e_ids[doomed_e]
        _apply_removal(forest, dom_count, last_dom)
    return pq_checks


def _apply_removal(forest: Forest, dom_count, last_dom) -> None:
    """The identity-aware removal shared by both tiers: an entry of a
    dominated leaf survives only as the *sole* dominator's own record
    (see :func:`~repro.kernels.frontier.page_prune`)."""
    col = forest.col
    lc = dom_count[col.entry_leaf]
    removed = forest.alive & (
        (lc >= 2) | ((lc == 1) & (col.entry_ids != last_dom[col.entry_leaf]))
    )
    if removed.any():
        forest.alive = forest.alive & ~removed
        forest.desc_live = col.live_descendants(forest.alive)
