"""Compute-backend layer: columnar kernels behind a registry/dispatch API.

The scalar algorithms in :mod:`repro.core` are the reference
implementations — readable, oracle-verified, and the source of truth for
cost accounting. This package holds their *bulk-array* counterparts: the
same algorithms expressed as numpy array programs over columnar data
structures, selected through a small backend registry:

- ``python`` — the scalar reference implementations.
- ``numpy``  — vectorised variants (``VectorTRS``, ``VectorBRS``)
  operating on the :class:`~repro.kernels.columnar.ColumnarALTree` and
  column-block pair gathers; shared-scan groups additionally run the
  *fused* multi-query kernels (:mod:`repro.kernels.fused`) — one
  stacked sweep per batch/page for the whole group.
- ``jit``    — the numpy classes with the fused shared-scan loops
  compiled by :mod:`repro.kernels.jit` (optional numba; silently
  degrades to ``numpy`` when absent — identical numbers either way).
- ``auto``   — ``numpy`` whenever a vectorised variant exists and the
  dataset qualifies (fully categorical, numpy importable; shape-gated
  variants additionally need their workload predicate to accept), else
  ``python``; shared scans escalate to ``jit`` when compiled.

Vectorised variants are **bit-identical** to their scalar counterparts in
result membership, batch structure, database passes and page-IO counts;
only the ``checks_*`` accounting differs (frontier/column-block
granularity — see ``docs/performance.md``). The ``jit`` tier is
bit-identical to ``numpy`` in *everything*, checks included.
"""

from __future__ import annotations

from repro.kernels.backend import (
    BACKENDS,
    available_backends,
    normalize_backend,
    numpy_ready,
    register_variant,
    resolve_algorithm,
    scalar_variant,
    vector_variant,
)
from repro.kernels.columnar import ColumnarALTree
from repro.kernels.plancache import (
    PlanCache,
    PlanKey,
    plan_cache,
    plan_fingerprint,
)
from repro.kernels.frontier import (
    batch_is_prunable,
    candidate_paths,
    page_prune,
    query_distances,
    query_node_rows,
    scan_prune,
)

__all__ = [
    "BACKENDS",
    "ColumnarALTree",
    "PlanCache",
    "PlanKey",
    "available_backends",
    "batch_is_prunable",
    "candidate_paths",
    "normalize_backend",
    "numpy_ready",
    "page_prune",
    "plan_cache",
    "plan_fingerprint",
    "query_distances",
    "query_node_rows",
    "register_variant",
    "resolve_algorithm",
    "scalar_variant",
    "scan_prune",
    "vector_variant",
]
