"""Columnar (CSR-style) flattening of the AL-Tree.

The pointer-based :class:`~repro.altree.tree.ALTree` is ideal for the
scalar traversals — cheap inserts, soft removal, per-node dictionaries —
but terrible for bulk work: every step is a Python-level dict lookup.
This module flattens a built tree into per-level numpy arrays once per
batch, after which the frontier kernels (:mod:`repro.kernels.frontier`)
replace node-at-a-time recursion with whole-level array operations.

Layout (one entry per *level* ``l`` of the attribute ordering; nodes of
a level are stored breadth-first, so the children of any node occupy one
contiguous slice of the next level):

- ``keys[l]``                       — value id fixed by each node.
- ``desc[l]``                       — built-time descendant counts.
- ``parent[l]``                     — index of each node's parent in
  level ``l-1`` (all zeros at level 0: the virtual root).
- ``child_start[l]`` / ``child_end[l]`` — the contiguous child slice of
  each node in level ``l+1`` (absent for the leaf level).
- ``entry_ids`` / ``entry_leaf``    — flat record ids and, per entry,
  the index of its leaf in the last level; ``leaf_start``/``leaf_count``
  give each leaf's contiguous entry slice.

Flattening costs one BFS over the tree (``O(nodes + objects)``) — paid
once per batch, amortised over every traversal the batch serves.
"""

from __future__ import annotations

import numpy as np

from repro.altree.tree import ALTree
from repro.errors import AlgorithmError

__all__ = ["ColumnarALTree", "dissimilarity_matrices"]


def dissimilarity_matrices(dataset, name: str) -> list[np.ndarray]:
    """The dataset's per-attribute dissimilarity matrices as numpy arrays.

    Raises :class:`AlgorithmError` for schemas the array kernels cannot
    serve: non-matrix-backed (numeric) attributes — the NumericTRS
    territory — and matrices with non-zero self-dissimilarity (the same
    contract :meth:`ReverseSkylineAlgorithm._tables` enforces).
    """
    from repro.dissim.matrix import MatrixDissimilarity

    mats = []
    for i, d in enumerate(dataset.space.dissims):
        if not isinstance(d, MatrixDissimilarity):
            raise AlgorithmError(
                f"{name}: attribute {i} is not matrix-backed; "
                f"{name} requires categorical attributes"
            )
        matrix = np.asarray(d.matrix)
        if np.diagonal(matrix).any():
            raise AlgorithmError(
                f"{name}: attribute {i} has non-zero self-dissimilarity"
            )
        mats.append(matrix)
    return mats


class ColumnarALTree:
    """One AL-Tree batch, flattened to per-level arrays."""

    __slots__ = (
        "num_levels",
        "keys",
        "desc",
        "parent",
        "child_start",
        "child_end",
        "leaf_start",
        "leaf_count",
        "entry_ids",
        "entry_leaf",
        "num_objects",
        "_leaf_index",
    )

    def __init__(self) -> None:
        self.num_levels = 0
        self.keys: list[np.ndarray] = []
        self.desc: list[np.ndarray] = []
        self.parent: list[np.ndarray] = []
        self.child_start: list[np.ndarray] = []
        self.child_end: list[np.ndarray] = []
        self.leaf_start = np.zeros(0, dtype=np.intp)
        self.leaf_count = np.zeros(0, dtype=np.intp)
        self.entry_ids = np.zeros(0, dtype=np.intp)
        self.entry_leaf = np.zeros(0, dtype=np.intp)
        self.num_objects = 0
        self._leaf_index: dict[int, int] = {}

    @classmethod
    def from_arrays(
        cls,
        *,
        keys: list[np.ndarray],
        desc: list[np.ndarray],
        parent: list[np.ndarray],
        child_start: list[np.ndarray],
        child_end: list[np.ndarray],
        leaf_start: np.ndarray,
        leaf_count: np.ndarray,
        entry_ids: np.ndarray,
        entry_leaf: np.ndarray,
    ) -> "ColumnarALTree":
        """Reassemble a flattening from its raw arrays (zero-copy views
        are fine — the kernels never mutate them).

        The pointer-tree leaf index is **not** reconstructed: it exists
        only to bridge :meth:`from_tree` to the builder that flattened
        the tree, so an imported flattening (plan cache, shared memory)
        supports every kernel but not :meth:`leaf_index_of`.
        """
        col = cls()
        col.num_levels = len(keys)
        col.keys = list(keys)
        col.desc = list(desc)
        col.parent = list(parent)
        col.child_start = list(child_start)
        col.child_end = list(child_end)
        col.leaf_start = leaf_start
        col.leaf_count = leaf_count
        col.entry_ids = entry_ids
        col.entry_leaf = entry_leaf
        col.num_objects = int(entry_ids.size)
        return col

    @classmethod
    def from_tree(cls, tree: ALTree) -> "ColumnarALTree":
        """Flatten ``tree`` (breadth-first, children contiguous)."""
        col = cls()
        m = tree.depth
        col.num_levels = m
        col.num_objects = tree.num_objects
        frontier: list = [tree.root]
        for level, pairs in enumerate(tree.bfs_levels()):
            col.keys.append(
                np.asarray([child.key for _, child in pairs], dtype=np.intp)
            )
            col.desc.append(
                np.asarray([child.descendants for _, child in pairs], dtype=np.int64)
            )
            col.parent.append(np.asarray([pi for pi, _ in pairs], dtype=np.intp))
            if level > 0:
                # The child slice of each level-(l-1) node, derived from
                # the BFS parent indices (children are contiguous), so
                # child_start[l-1] / child_end[l-1] index INTO level l.
                counts = np.bincount(col.parent[level], minlength=len(frontier))
                ends_arr = np.cumsum(counts)
                col.child_start.append((ends_arr - counts).astype(np.intp))
                col.child_end.append(ends_arr.astype(np.intp))
            frontier = [child for _, child in pairs]
        # Leaves: the last level's nodes, in BFS order.
        ids: list[int] = []
        leaf_of: list[int] = []
        starts = []
        counts = []
        offset = 0
        for li, leaf in enumerate(frontier):
            starts.append(offset)
            counts.append(len(leaf.entries))
            for rid, _values in leaf.entries:
                ids.append(rid)
                leaf_of.append(li)
            offset += len(leaf.entries)
            col._leaf_index[id(leaf)] = li
        col.leaf_start = np.asarray(starts, dtype=np.intp)
        col.leaf_count = np.asarray(counts, dtype=np.intp)
        col.entry_ids = np.asarray(ids, dtype=np.intp)
        col.entry_leaf = np.asarray(leaf_of, dtype=np.intp)
        return col

    def leaf_index_of(self, leaf_node) -> int:
        """The flat index of a pointer-tree leaf in this flattening."""
        return self._leaf_index[id(leaf_node)]

    def leaf_indices_for(self, leaf_nodes) -> np.ndarray:
        """Vector of flat leaf indices for a batch of pointer-tree leaves."""
        index = self._leaf_index
        return np.fromiter(
            (index[id(node)] for node in leaf_nodes),
            dtype=np.intp,
            count=len(leaf_nodes),
        )

    def live_descendants(self, alive: np.ndarray) -> list[np.ndarray]:
        """Per-level live-descendant counts given an entry ``alive`` mask
        (the array analogue of the pointer tree's maintained counters)."""
        m = self.num_levels
        live: list[np.ndarray] = [np.zeros(0, dtype=np.int64)] * m
        if m == 0:
            return live
        nleaf = self.keys[m - 1].size
        leaf_live = np.bincount(
            self.entry_leaf[alive], minlength=nleaf
        ).astype(np.int64)
        live[m - 1] = leaf_live
        for level in range(m - 1, 0, -1):
            size = self.keys[level - 1].size
            live[level - 1] = np.bincount(
                self.parent[level], weights=live[level], minlength=size
            ).astype(np.int64)
        return live
