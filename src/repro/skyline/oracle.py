"""Reference oracles for reverse-skyline correctness.

Two independent definitions of ``RS_D(Q)`` from Section 3:

1. The definitional form: ``X ∈ RS_D(Q)`` iff ``Q ∈ S_{D ∪ {Q}}(X)`` —
   compute the full dynamic skyline of ``D ∪ {Q}`` with respect to ``X``
   and test the query's membership (cubic; tests only).
2. The pruner form: ``X ∈ RS_D(Q)`` iff no ``Y ∈ D`` dominates ``Q`` with
   respect to ``X`` (quadratic; this is also what the Naive algorithm in
   :mod:`repro.core.naive` implements with IO simulation on top).

The test suite checks every production algorithm against both.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.skyline.domination import dominates
from repro.skyline.dynamic import bnl_skyline

__all__ = ["reverse_skyline_by_definition", "reverse_skyline_by_pruners"]


def reverse_skyline_by_definition(dataset: Dataset, query: tuple) -> list[int]:
    """``RS`` via explicit skyline membership of the query (Definition 1).

    For each object ``X``, builds the dynamic skyline of
    ``(D \\ {X}) ∪ {Q}`` with respect to ``X`` using BNL and keeps ``X``
    iff the appended query object survives. ``X`` itself is excluded *by
    identity* — exact duplicates of ``X`` elsewhere in ``D`` still count
    as potential dominators (Algorithm 1, line 4: ``∀Y ∈ D, Y ≠ X``),
    which is why the running example's duplicate pairs prune each other.
    """
    q = dataset.validate_query(query)
    result = []
    for record_id, x in enumerate(dataset.records):
        others = [
            y for other_id, y in enumerate(dataset.records) if other_id != record_id
        ]
        others.append(q)
        q_index = len(others) - 1
        skyline = bnl_skyline(dataset.space, others, x)
        if q_index in skyline:
            result.append(record_id)
    return result


def reverse_skyline_by_pruners(dataset: Dataset, query: tuple) -> list[int]:
    """``RS`` via the pruner characterisation: keep ``X`` iff no ``Y``
    dominates ``Q`` with respect to ``X``."""
    q = dataset.validate_query(query)
    space = dataset.space
    result = []
    for record_id, x in enumerate(dataset.records):
        if not any(
            dominates(space, y, q, x)
            for other_id, y in enumerate(dataset.records)
            if other_id != record_id
        ):
            result.append(record_id)
    return result
