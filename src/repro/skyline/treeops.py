"""AL-Tree-accelerated skyline and top-k retrieval.

The paper builds on two earlier AL-Tree operators: online top-k with
arbitrary measures (Deshpande et al., EDBT 2008 [10]) and skyline
retrieval with arbitrary measures (Deepak P et al., EDBT 2009 [21],
"SkylineDFS"). These are re-implementations of both over this library's
AL-Tree — useful in their own right, and they let tests validate the tree
machinery against the simple operators in :mod:`repro.skyline.dynamic`.

Both exploit the same structure as TRS: a node fixes a value prefix, so a
distance computed at a node applies to every object below it.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.altree.tree import ALTree
from repro.dissim.space import DissimilaritySpace
from repro.errors import AlgorithmError

__all__ = ["tree_skyline", "tree_top_k"]


def _build_tree(space: DissimilaritySpace, records: Sequence[tuple], order) -> ALTree:
    tree = ALTree(order)
    for i, r in enumerate(records):
        tree.insert(i, r)
    return tree


def tree_skyline(
    space: DissimilaritySpace,
    records: Sequence[tuple],
    ref: tuple,
    *,
    attribute_order: Sequence[int] | None = None,
) -> list[int]:
    """Dynamic skyline of ``records`` with respect to ``ref`` via
    group-level domination checks on an AL-Tree.

    For each candidate ``Y`` (with distance vector ``yd``), a traversal
    eliminates every value group farther from ``ref`` than ``Y`` on the
    group's attribute; a surviving leaf with a strictly-closer prefix is a
    dominator. One check discharges a whole subtree, exactly as in TRS's
    phase 1 — this is the SkylineDFS idea.
    """
    if not space.is_fully_categorical():
        raise AlgorithmError("tree_skyline requires categorical attributes")
    tables = space.tables()
    m = space.num_attributes
    order = (
        list(attribute_order)
        if attribute_order is not None
        else ascending_cardinality_order_from_space(space)
    )
    tree = _build_tree(space, records, order)
    # Reference distance rows: rd[i][v] = d_i(ref_i, v).
    rd = [tables[i][ref[i]] for i in range(m)]
    skyline: list[int] = []
    for y_id, y in enumerate(records):
        yd = [rd[i][y[i]] for i in range(m)]
        tree.remove_object(y_id, y)
        dominated = False
        stack = [(tree.root, False)]
        while stack:
            node, found_closer = stack.pop()
            if node.entries:
                if found_closer:
                    dominated = True
                    break
                continue
            for child in node.children.values():
                i = order[child.position]
                d_rp = rd[i][child.key]
                if d_rp <= yd[i]:
                    stack.append((child, found_closer or d_rp < yd[i]))
        tree.insert(y_id, y)
        if not dominated:
            skyline.append(y_id)
    return skyline


def ascending_cardinality_order_from_space(space: DissimilaritySpace) -> list[int]:
    """Attribute order by ascending domain size, from the space alone."""
    cards = space.cardinalities()
    if any(c is None for c in cards):
        raise AlgorithmError("all attributes must be categorical")
    return [i for _, i in sorted((c, i) for i, c in enumerate(cards))]


def tree_top_k(
    space: DissimilaritySpace,
    records: Sequence[tuple],
    ref: tuple,
    weights: Sequence[float],
    k: int,
    *,
    attribute_order: Sequence[int] | None = None,
) -> list[tuple[int, float]]:
    """Top-``k`` objects by ascending weighted-sum distance to ``ref``,
    via best-first search on an AL-Tree (the EDBT 2008 operator).

    A node fixing attributes ``i1..il`` admits the lower bound
    ``Σ w_ij * d_ij(ref, key_ij)`` (unfixed attributes contribute >= 0),
    so expanding nodes in bound order yields exact results without
    scoring every object. Returns ``[(record_id, score), ...]`` ascending
    by score (ties by record id).
    """
    if k < 0:
        raise AlgorithmError(f"k must be >= 0, got {k}")
    if not space.is_fully_categorical():
        raise AlgorithmError("tree_top_k requires categorical attributes")
    if len(weights) != space.num_attributes:
        raise AlgorithmError(
            f"{len(weights)} weights for {space.num_attributes} attributes"
        )
    if any(w < 0 for w in weights):
        raise AlgorithmError("weights must be non-negative")
    tables = space.tables()
    m = space.num_attributes
    order = (
        list(attribute_order)
        if attribute_order is not None
        else ascending_cardinality_order_from_space(space)
    )
    tree = _build_tree(space, records, order)
    rd = [tables[i][ref[i]] for i in range(m)]

    out: list[tuple[int, float]] = []
    counter = 0
    heap: list[tuple[float, int, object]] = [(0.0, counter, tree.root)]
    while heap and len(out) < k:
        bound, _, node = heapq.heappop(heap)
        if node.entries:
            # All attributes fixed: the bound is the exact score for
            # every duplicate stored at this leaf.
            for rid, _values in sorted(node.entries):
                out.append((rid, bound))
                if len(out) == k:
                    break
            continue
        for child in node.children.values():
            i = order[child.position]
            counter += 1
            heapq.heappush(
                heap, (bound + weights[i] * rd[i][child.key], counter, child)
            )
    return out
