"""The domination predicate (paper Section 3).

``dominates(space, a, b, ref)`` answers: does object ``a`` dominate object
``b`` **with respect to** reference object ``ref``? Formally
``a ≻_ref b`` iff

- ``∀i  d_i(a, ref) <= d_i(b, ref)`` and
- ``∃i  d_i(a, ref) <  d_i(b, ref)``.

The reverse-skyline *pruner* test is this same predicate instantiated as
``dominates(space, y, q, x)``: "Y dominates Q with respect to X", whose
truth excludes X from ``RS(Q)``.
"""

from __future__ import annotations

from repro.dissim.space import DissimilaritySpace

__all__ = ["dominates", "dominates_counted", "is_pruner"]


def dominates(space: DissimilaritySpace, a: tuple, b: tuple, ref: tuple) -> bool:
    """True iff ``a ≻_ref b``. Aborts on the first attribute where ``a``
    is farther from ``ref`` than ``b`` (the early-abort of Section 4.3)."""
    strictly_closer = False
    for i in range(space.num_attributes):
        da = space.d(i, ref[i], a[i])
        db = space.d(i, ref[i], b[i])
        if da > db:
            return False
        if da < db:
            strictly_closer = True
    return strictly_closer


def dominates_counted(
    space: DissimilaritySpace, a: tuple, b: tuple, ref: tuple
) -> tuple[bool, int]:
    """Like :func:`dominates` but also returns the number of attribute-level
    checks performed before deciding — the cost currency of the paper's
    Table 3."""
    strictly_closer = False
    checks = 0
    for i in range(space.num_attributes):
        checks += 1
        da = space.d(i, ref[i], a[i])
        db = space.d(i, ref[i], b[i])
        if da > db:
            return False, checks
        if da < db:
            strictly_closer = True
    return strictly_closer, checks


def is_pruner(space: DissimilaritySpace, y: tuple, x: tuple, q: tuple) -> bool:
    """True iff ``y`` prunes ``x`` from ``RS(q)``, i.e. ``y ≻_x q``."""
    return dominates(space, y, q, x)
