"""Skyline substrate: domination predicate, dynamic skyline, RS oracles.

Public surface:

- :func:`dominates` / :func:`dominates_counted` / :func:`is_pruner`
- :func:`bnl_skyline` / :func:`sorted_skyline` — dynamic skyline operators
- :func:`reverse_skyline_by_definition` / :func:`reverse_skyline_by_pruners`
  — independent reference oracles used by the test suite
"""

from repro.skyline.domination import dominates, dominates_counted, is_pruner
from repro.skyline.dynamic import bnl_skyline, sorted_skyline
from repro.skyline.oracle import (
    reverse_skyline_by_definition,
    reverse_skyline_by_pruners,
)
from repro.skyline.treeops import tree_skyline, tree_top_k

__all__ = [
    "bnl_skyline",
    "dominates",
    "dominates_counted",
    "is_pruner",
    "reverse_skyline_by_definition",
    "reverse_skyline_by_pruners",
    "sorted_skyline",
    "tree_skyline",
    "tree_top_k",
]
