"""Dynamic (query-based) skyline operators for non-metric spaces.

The skyline of the database for a reference object ``X`` is the set of
objects not dominated by any other with respect to ``X`` (Section 3):

``S_D(X) = { Y ∈ D | ¬∃ Z ∈ D : Z ≻_X Y }``

Two classic algorithms that need nothing but the domination predicate —
and therefore work under arbitrary non-metric measures (Section 2) — are
provided: Block-Nested-Loops [Börzsönyi et al., ICDE 2001] and a
sort-first single-pass variant [Chomicki et al., ICDE 2003]. They are the
conceptual substrate of reverse skyline and double as correctness oracles.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dissim.space import DissimilaritySpace
from repro.skyline.domination import dominates

__all__ = ["bnl_skyline", "sorted_skyline"]


def bnl_skyline(
    space: DissimilaritySpace, records: Sequence[tuple], ref: tuple
) -> list[int]:
    """Block-Nested-Loops dynamic skyline. Returns the indices (into
    ``records``) of the skyline members with respect to ``ref``.

    The window holds indices of objects not yet dominated; each incoming
    object is compared against the window, evicting dominated entries.
    Domination with respect to a fixed ``ref`` is transitive, so once the
    candidate is dominated the window cannot contain anything it
    dominates and is left untouched.
    """
    window: list[int] = []
    for idx, candidate in enumerate(records):
        dominated = False
        survivors: list[int] = []
        for w in window:
            if dominates(space, records[w], candidate, ref):
                dominated = True
                break
            if not dominates(space, candidate, records[w], ref):
                survivors.append(w)
        if not dominated:
            survivors.append(idx)
            window = survivors
    return sorted(window)


def sorted_skyline(
    space: DissimilaritySpace, records: Sequence[tuple], ref: tuple
) -> list[int]:
    """Sort-first skyline: order candidates by the sum of their per-attribute
    distances to ``ref`` (a monotone aggregate), after which an object can
    only be dominated by one that precedes it; a single pass against the
    confirmed skyline suffices.
    """
    m = space.num_attributes

    def aggregate(values: tuple) -> float:
        return sum(space.d(i, ref[i], values[i]) for i in range(m))

    order = sorted(range(len(records)), key=lambda idx: aggregate(records[idx]))
    skyline: list[int] = []
    for idx in order:
        candidate = records[idx]
        if not any(dominates(space, records[s], candidate, ref) for s in skyline):
            skyline.append(idx)
    return sorted(skyline)
