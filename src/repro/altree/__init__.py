"""In-memory AL-Tree (prefix tree over attribute-ordered records).

Public surface:

- :class:`ALTree` — insert / find / remove + invariant checking
- :class:`ALTreeNode` — node structure with descendant counts

The TRS traversals (``IsPrunable``, ``Prune``; Algorithms 4 and 5) live in
:mod:`repro.core.trs`, keeping this package a pure data structure.
"""

from repro.altree.node import ALTreeNode
from repro.altree.tree import ALTree

__all__ = ["ALTree", "ALTreeNode"]
