"""The in-memory AL-Tree used by TRS (Section 4.3).

A per-batch prefix tree over the attribute-ordered records. Objects that
share value prefixes share paths, which is what enables group-level
reasoning: one failed comparison at an internal node discharges every
object below it. The tree also *compacts* memory — shared prefixes are
stored once — which is why TRS fits larger batches than BRS/SRS into the
same budget (Section 5.3, "IO Costs").
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from repro.altree.node import ALTreeNode
from repro.errors import AlgorithmError

__all__ = ["ALTree"]


class ALTree:
    """A prefix tree over records keyed by an attribute ordering.

    Parameters
    ----------
    attribute_order:
        ``attribute_order[p]`` is the record attribute index fixed at tree
        position ``p``. The paper orders attributes by ascending
        cardinality (Section 5.1) so groups near the root are large.
    key_fn:
        Optional ``(position, value) -> key`` mapping record values to
        tree keys. The identity for categorical data; a bucketiser for the
        Section 6 numeric extension.
    """

    def __init__(
        self,
        attribute_order: Sequence[int],
        *,
        key_fn: Callable[[int, object], object] | None = None,
    ) -> None:
        if not attribute_order:
            raise AlgorithmError("attribute order must be non-empty")
        if len(set(attribute_order)) != len(attribute_order):
            raise AlgorithmError(f"attribute order {attribute_order!r} has duplicates")
        self.attribute_order = list(attribute_order)
        self._key_fn = key_fn
        self.root = ALTreeNode()
        #: Number of non-root nodes, maintained incrementally (the tree's
        #: memory footprint driver; see :meth:`memory_bytes`).
        self.num_nodes = 0
        #: Objects removed through :meth:`delete` over this tree's
        #: lifetime (the maintenance layer's tombstone counter: it drives
        #: compaction triggers and the ``repro_maint_delta_records``
        #: gauge; see :mod:`repro.maint`).
        self.deleted_count = 0

    @property
    def depth(self) -> int:
        """Number of attributes (= leaf level)."""
        return len(self.attribute_order)

    @property
    def num_objects(self) -> int:
        return self.root.descendants

    def __len__(self) -> int:
        return self.root.descendants

    def key_for(self, position: int, values: tuple):
        """The tree key of ``values`` at tree position ``position``."""
        value = values[self.attribute_order[position]]
        return self._key_fn(position, value) if self._key_fn else value

    def insert(self, record_id: int, values: tuple) -> ALTreeNode:
        """Insert one object, creating path nodes as needed. Returns the
        leaf holding the object."""
        node = self.root
        node.descendants += 1
        for position in range(len(self.attribute_order)):
            key = self.key_for(position, values)
            child = node.children.get(key)
            if child is None:
                child = ALTreeNode(key, position, node)
                node.children[key] = child
                self.num_nodes += 1
            child.descendants += 1
            node = child
        node.entries.append((record_id, values))
        return node

    def find_leaf(self, values: tuple) -> ALTreeNode | None:
        """The leaf for ``values``' path, or ``None`` if absent."""
        node = self.root
        for position in range(len(self.attribute_order)):
            node = node.children.get(self.key_for(position, values))
            if node is None:
                return None
        return node

    def _propagate_removal(self, leaf: ALTreeNode, removed: int) -> None:
        """Decrement descendant counts from ``leaf`` to the root, deleting
        nodes whose subtree became empty."""
        node: ALTreeNode | None = leaf
        while node is not None:
            node.descendants -= removed
            parent = node.parent
            if parent is not None and node.descendants == 0:
                del parent.children[node.key]
                node.parent = None
                self.num_nodes -= 1
            node = parent

    def remove_leaf(self, leaf: ALTreeNode) -> None:
        """Remove a whole leaf (all its entries), pruning now-empty
        ancestors — Algorithm 5 removes leaves this way."""
        removed = leaf.count
        leaf.entries = []
        self._propagate_removal(leaf, removed)

    def remove_entries(self, leaf: ALTreeNode, keep) -> int:
        """Keep only entries satisfying ``keep(entry)`` at ``leaf``;
        returns how many were removed (the Section 6 numeric refinement
        evicts individual entries from a leaf)."""
        before = leaf.count
        leaf.entries = [e for e in leaf.entries if keep(e)]
        removed = before - leaf.count
        if removed:
            self._propagate_removal(leaf, removed)
        return removed

    def soft_remove(self, leaf: ALTreeNode, record_id: int):
        """Remove one entry from ``leaf`` by decrementing descendant counts
        **without** deleting emptied nodes — traversals skip subtrees with
        ``descendants == 0``, so this is equivalent to a real removal but
        avoids dictionary churn. Pair with :meth:`soft_restore`. Returns
        the removed entry (or ``None`` if absent)."""
        for idx, entry in enumerate(leaf.entries):
            if entry[0] == record_id:
                del leaf.entries[idx]
                node: ALTreeNode | None = leaf
                while node is not None:
                    node.descendants -= 1
                    node = node.parent
                return entry
        return None

    def soft_restore(self, leaf: ALTreeNode, entry: tuple[int, tuple]) -> None:
        """Undo one :meth:`soft_remove`."""
        leaf.entries.append(entry)
        node: ALTreeNode | None = leaf
        while node is not None:
            node.descendants += 1
            node = node.parent

    def remove_object(self, record_id: int, values: tuple) -> bool:
        """Remove one object occurrence (used to exclude ``c`` itself
        before an ``IsPrunable`` check, Algorithm 3 line 5). Returns True
        if found."""
        leaf = self.find_leaf(values)
        if leaf is None:
            return False
        for i, (rid, _) in enumerate(leaf.entries):
            if rid == record_id:
                del leaf.entries[i]
                self._propagate_removal(leaf, 1)
                return True
        return False

    def delete(self, record_id: int, values: tuple) -> bool:
        """Remove one object as a *data mutation* (paper §4.3's incremental
        maintenance, mirror of :meth:`insert`): the removal is counted in
        :attr:`deleted_count` so maintenance layers can size compaction
        triggers from churn, not just net growth. Returns True if found.
        """
        if self.remove_object(record_id, values):
            self.deleted_count += 1
            return True
        return False

    def merge_from(self, other: "ALTree") -> int:
        """Merge every object of ``other`` into this tree (the LSM-style
        size-tiered delta merge: two delta trees over the same attribute
        order collapse into one, sharing prefix paths). ``other`` is left
        untouched; churn counters accumulate. Returns objects merged.
        """
        if other.attribute_order != self.attribute_order:
            raise AlgorithmError(
                "cannot merge AL-Trees with different attribute orders: "
                f"{other.attribute_order!r} vs {self.attribute_order!r}"
            )
        merged = 0
        for record_id, values in other.iter_entries():
            self.insert(record_id, values)
            merged += 1
        self.deleted_count += other.deleted_count
        return merged

    def memory_bytes(self, node_bytes: int = 8, entry_bytes: int = 4) -> int:
        """Modeled in-memory footprint: shared prefix paths are stored once
        (``node_bytes`` per non-root node: value id + counter) and each
        object contributes only its leaf entry (``entry_bytes``: record
        id). This is the compaction that lets TRS fit larger batches than
        a flat layout into the same budget (Section 5.3)."""
        return self.num_nodes * node_bytes + self.num_objects * entry_bytes

    def leaves(self) -> Iterator[ALTreeNode]:
        """All leaves, depth-first."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if node is not self.root or node.entries:
                    yield node
            else:
                stack.extend(node.children.values())

    def iter_entries(self) -> Iterator[tuple[int, tuple]]:
        """All stored ``(record_id, values)`` pairs."""
        for leaf in self.leaves():
            yield from leaf.entries

    def bfs_levels(self) -> Iterator[list[tuple[int, ALTreeNode]]]:
        """The tree one level at a time, as ``(parent_index, node)`` pairs.

        ``parent_index`` is the node's parent's position within the
        *previous* yielded level (0 for level 0: the virtual root), and
        each node's children appear consecutively — the contiguity the
        columnar flattening (:mod:`repro.kernels.columnar`) turns into
        CSR child slices. Yields exactly ``depth`` levels; the last one
        holds the leaves.
        """
        frontier = [self.root]
        for _ in range(self.depth):
            level = [
                (pi, child)
                for pi, node in enumerate(frontier)
                for child in node.children.values()
            ]
            yield level
            frontier = [child for _, child in level]

    def node_count(self) -> int:
        """Total number of nodes (root included) — the tree's memory
        footprint driver; shared prefixes make this far smaller than
        ``num_objects * depth`` on clustered data."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def check_invariants(self) -> None:
        """Raise AssertionError unless descendant counts are consistent —
        used by tests and safe to call after any mutation."""
        def walk(node: ALTreeNode) -> int:
            if node.is_leaf:
                total = node.count
            else:
                total = sum(walk(c) for c in node.children.values())
                assert not node.entries, "internal node holds entries"
            assert node.descendants == total, (
                f"node {node!r} descendants={node.descendants} actual={total}"
            )
            return total

        walk(self.root)
