"""AL-Tree nodes.

The AL-Tree (Attribute-Level Tree, [Deshpande et al., EDBT 2008]) used by
TRS is, for a chosen attribute ordering, "precisely the prefix tree for
the ordered database" (Section 4.3). Internal nodes fix a value for one
attribute; a node at level ``l`` has fixed the first ``l`` attributes of
the ordering. Leaves carry the objects (record id + values) that take
exactly the path's values — storing duplicates as multiple entries of the
same leaf, which generalises the paper's leaf counters while letting us
return actual result ids.
"""

from __future__ import annotations

__all__ = ["ALTreeNode"]


class ALTreeNode:
    """One node of an AL-Tree.

    Attributes
    ----------
    key:
        The value this node fixes for its tree position (``None`` at the
        root). For categorical attributes this is the value id; for
        discretised numeric attributes (Section 6) it is the bucket id.
    position:
        Index into the tree's attribute ordering that this node's key
        fixes; the root has position ``-1``.
    parent:
        Parent node (``None`` at the root).
    children:
        ``key -> ALTreeNode`` mapping.
    descendants:
        Number of objects stored in this subtree. The traversal order of
        Algorithm 4 ("in increasing order of number of descendants") is
        computed from this.
    entries:
        At leaves: the ``(record_id, values)`` pairs of the stored objects.
    """

    __slots__ = ("key", "position", "parent", "children", "descendants", "entries")

    def __init__(self, key=None, position: int = -1, parent: "ALTreeNode | None" = None):
        self.key = key
        self.position = position
        self.parent = parent
        self.children: dict = {}
        self.descendants = 0
        self.entries: list[tuple[int, tuple]] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def count(self) -> int:
        """Number of objects at this leaf (the paper's duplicate counter)."""
        return len(self.entries)

    def child(self, key) -> "ALTreeNode | None":
        return self.children.get(key)

    def children_by_promise(self) -> list["ALTreeNode"]:
        """Children in *increasing* order of descendant count. Algorithm 4
        pushes children onto a LIFO stack in this order so the most
        promising (largest) subtree is processed first."""
        return sorted(self.children.values(), key=lambda c: c.descendants)

    def path_keys(self) -> list:
        """Keys along the path from the root (exclusive) to this node."""
        keys: list = []
        node: ALTreeNode | None = self
        while node is not None and node.parent is not None:
            keys.append(node.key)
            node = node.parent
        keys.reverse()
        return keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ALTreeNode(key={self.key!r}, position={self.position}, "
            f"descendants={self.descendants}, leaf={self.is_leaf})"
        )
