"""Multi-attribute sorting: in-memory keys and external merge sort.

Public surface:

- :func:`multiattribute_key` / :func:`sort_records` / :func:`sort_dataset`
- :func:`schema_order` / :func:`ascending_cardinality_order` /
  :func:`observed_cardinality_order` — attribute-ordering heuristics
- :func:`external_sort` + :class:`ExternalSortStats` — the Section 5.5
  pre-processing step over the simulated disk
"""

from repro.sorting.external import ExternalSortStats, external_sort
from repro.sorting.keys import (
    ascending_cardinality_order,
    multiattribute_key,
    observed_cardinality_order,
    schema_order,
    sort_dataset,
    sort_records,
)

__all__ = [
    "ExternalSortStats",
    "ascending_cardinality_order",
    "external_sort",
    "multiattribute_key",
    "observed_cardinality_order",
    "schema_order",
    "sort_dataset",
    "sort_records",
]
