"""Attribute orderings and multi-attribute sort keys.

The pre-sorting step (Section 4.2) orders the database by attribute 1,
breaking ties by attribute 2, and so on — "the actual ordering among
different values of an attribute is immaterial", the point is only that
equal values cluster. For the AL-Tree the paper additionally recommends
"arranging the attributes in the increasing order of number of distinct
values" (Section 5.1) so the tree has large groups near the root.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.errors import AlgorithmError

__all__ = [
    "ascending_cardinality_order",
    "schema_order",
    "multiattribute_key",
    "sort_records",
    "sort_dataset",
]


def schema_order(schema: Schema) -> list[int]:
    """The identity attribute order ``[0, 1, ..., m-1]``."""
    return list(range(schema.num_attributes))


def ascending_cardinality_order(schema: Schema, dataset: Dataset | None = None) -> list[int]:
    """Attributes sorted by increasing number of distinct values — the
    paper's AL-Tree ordering heuristic (Section 5.1). Numeric attributes
    (unbounded domains) go last; when a dataset is given, their *observed*
    distinct counts are used instead."""
    keys: list[tuple[float, int]] = []
    for i, attr in enumerate(schema):
        if attr.is_categorical:
            keys.append((attr.cardinality, i))
        elif dataset is not None:
            observed = len({r[i] for r in dataset.records})
            keys.append((observed, i))
        else:
            keys.append((float("inf"), i))
    keys.sort()
    return [i for _, i in keys]


def observed_cardinality_order(dataset: Dataset) -> list[int]:
    """Like :func:`ascending_cardinality_order` but using value counts
    actually present in the data (useful when domains are much larger
    than the populated value sets)."""
    counts = []
    for i in range(dataset.num_attributes):
        counter = Counter(r[i] for r in dataset.records)
        counts.append((len(counter), i))
    counts.sort()
    return [i for _, i in counts]


def multiattribute_key(attribute_order: Sequence[int]):
    """A sort key clustering records by ``attribute_order``: records equal
    on the first ordered attribute are adjacent, ties broken by the next,
    etc. (the multi-attribute sort of Section 4.2)."""
    order = list(attribute_order)
    if not order:
        raise AlgorithmError("attribute order must be non-empty")

    def key(values: tuple):
        return tuple(values[i] for i in order)

    return key


def sort_records(
    records: Sequence[tuple], attribute_order: Sequence[int]
) -> list[tuple]:
    """In-memory multi-attribute sort of raw value tuples."""
    return sorted(records, key=multiattribute_key(attribute_order))


def sort_dataset(dataset: Dataset, attribute_order: Sequence[int] | None = None) -> Dataset:
    """A copy of ``dataset`` with records in multi-attribute sorted order.

    This is the in-memory counterpart of the external pre-sort; algorithms
    use it when the caller has not staged data through the disk simulator.
    """
    if attribute_order is None:
        attribute_order = schema_order(dataset.schema)
    if sorted(attribute_order) != list(range(dataset.num_attributes)):
        raise AlgorithmError(
            f"attribute order {attribute_order!r} is not a permutation of "
            f"0..{dataset.num_attributes - 1}"
        )
    return dataset.with_records(
        sort_records(dataset.records, attribute_order),
        name=f"{dataset.name}[sorted]",
    )
