"""External multi-attribute merge sort over the simulated disk.

The SRS/TRS pre-processing (Sections 4.2, 5.5) sorts the database once,
offline, with a memory budget far smaller than the data. This is the
classic two-stage external sort:

1. **Run generation** — read as many pages as fit in the budget, sort the
   records in memory with the multi-attribute key, write the sorted run to
   a scratch file.
2. **K-way merge** — repeatedly merge up to ``budget.pages - 1`` runs
   (one input page per run, one output page) until a single run remains.

The sorter reports the statistics Section 5.5 discusses: run counts, merge
passes, pages read/written and wall time.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import MemoryBudgetError
from repro.sorting.keys import multiattribute_key
from repro.storage.disk import DiskSimulator, MemoryBudget
from repro.storage.pagefile import PageFile

__all__ = ["ExternalSortStats", "external_sort"]


@dataclass
class ExternalSortStats:
    """What the pre-processing step cost (Section 5.5)."""

    num_records: int = 0
    initial_runs: int = 0
    merge_passes: int = 0
    pages_read: int = 0
    pages_written: int = 0
    wall_time_s: float = 0.0
    run_lengths: list[int] = field(default_factory=list)


def external_sort(
    disk: DiskSimulator,
    source: PageFile,
    budget: MemoryBudget,
    attribute_order: Sequence[int],
    *,
    output_name: str = "sorted",
) -> tuple[PageFile, ExternalSortStats]:
    """Sort ``source`` into a new file on ``disk`` by the multi-attribute
    key over ``attribute_order``. Returns ``(sorted_file, stats)``.

    Sorting is stable with respect to record ids, so duplicate objects
    keep their original relative order.
    """
    started = time.perf_counter()
    stats = ExternalSortStats(num_records=source.num_records)
    key = multiattribute_key(attribute_order)

    def entry_key(entry: tuple[int, tuple]):
        return key(entry[1])

    io_before = disk.stats.snapshot()

    # Scratch files created so far; an aborted sort drops them all in the
    # except path below so no (possibly real) file handles leak.
    scratch: list[str] = []

    def scratch_file(name: str) -> PageFile:
        pf = disk.create_file(name, source.codec)
        scratch.append(name)
        return pf

    try:
        # --- Stage 1: run generation -------------------------------------
        capacity_pages = budget.pages
        run_files: list[PageFile] = []
        buffer: list[tuple[int, tuple]] = []
        buffered_pages = 0

        def flush_run() -> None:
            nonlocal buffer, buffered_pages
            if not buffer:
                return
            buffer.sort(key=entry_key)
            run = scratch_file(f"{output_name}.run{len(run_files)}")
            with run.writer() as w:
                w.extend(buffer)
            stats.run_lengths.append(len(buffer))
            run_files.append(run)
            buffer = []
            buffered_pages = 0

        for _, page_records in source.scan():
            buffer.extend(page_records)
            buffered_pages += 1
            if buffered_pages >= capacity_pages:
                flush_run()
        flush_run()
        stats.initial_runs = len(run_files)

        # --- Stage 2: k-way merge passes ----------------------------------
        fan_in = budget.pages - 1
        if fan_in < 1:
            if len(run_files) > 1:
                raise MemoryBudgetError(
                    "merging needs >= 2 pages of memory (1 input + 1 output)"
                )
            fan_in = 1
        generation = 0
        while len(run_files) > 1:
            stats.merge_passes += 1
            next_runs: list[PageFile] = []
            for group_start in range(0, len(run_files), fan_in):
                group = run_files[group_start : group_start + fan_in]
                merged = scratch_file(
                    f"{output_name}.gen{generation}.m{len(next_runs)}"
                )
                _merge_runs(group, merged, entry_key)
                next_runs.append(merged)
                for run in group:
                    run.truncate()
                    disk.drop_file(run.name)
            run_files = next_runs
            generation += 1

        # --- Finalise ------------------------------------------------------
        if run_files:
            result = run_files[0]
        else:  # empty source
            result = scratch_file(f"{output_name}.run0")
        # Present the output under a stable name.
        disk.rename_file(result.name, output_name)
    except BaseException:
        for name in scratch:
            disk.drop_file(name)  # no-op for names already dropped/renamed
        raise

    io_delta = disk.stats.delta(io_before)
    stats.pages_read = io_delta.sequential_reads + io_delta.random_reads
    stats.pages_written = io_delta.sequential_writes + io_delta.random_writes
    stats.wall_time_s = time.perf_counter() - started
    return result, stats


def _merge_runs(runs: list[PageFile], out: PageFile, entry_key) -> None:
    """K-way merge with one in-memory page per input run."""
    iterators = []
    for run in runs:
        iterators.append(_page_buffered(run))
    heap: list[tuple] = []
    for idx, it in enumerate(iterators):
        first = next(it, None)
        if first is not None:
            heapq.heappush(heap, (entry_key(first), first[0], idx, first))
    with out.writer() as w:
        while heap:
            _, _, idx, entry = heapq.heappop(heap)
            w.append(entry[0], entry[1])
            nxt = next(iterators[idx], None)
            if nxt is not None:
                heapq.heappush(heap, (entry_key(nxt), nxt[0], idx, nxt))


def _page_buffered(run: PageFile):
    """Yield records of a run, reading one page at a time (the merge holds
    exactly one page of each run in memory)."""
    for _, records in run.scan():
        yield from records
