"""Dataset persistence: a portable CSV/JSON on-disk format, plus stored
physical layouts (the one-time pre-sort/tiling permutations).

Public surface: :func:`save_dataset` / :func:`load_dataset` /
:func:`save_layouts` / :func:`load_layouts` / :func:`layout_entries`.
"""

from repro.persist.format import load_dataset, save_dataset
from repro.persist.layouts import layout_entries, load_layouts, save_layouts

__all__ = [
    "layout_entries",
    "load_dataset",
    "load_layouts",
    "save_dataset",
    "save_layouts",
]
