"""On-disk dataset format.

A dataset directory contains:

- ``schema.json`` — dataset name plus one entry per attribute: name, kind,
  cardinality/labels (categorical) or the dissimilarity spec (numeric).
- ``records.csv`` — one row per object, one column per attribute
  (categorical columns hold value ids, numeric columns floats).
- ``dissim_<i>.csv`` — the dense dissimilarity matrix of categorical
  attribute ``i``, one row per value.

Only declarative dissimilarities round-trip (matrices, absolute and
scaled differences); arbitrary Python callables cannot be persisted and
raise :class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

import csv
import json
import pathlib

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Attribute, NUMERIC, Schema
from repro.dissim.matrix import MatrixDissimilarity
from repro.dissim.numeric import AbsoluteDifference, ScaledDifference
from repro.dissim.space import DissimilaritySpace
from repro.errors import StorageError

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def _numeric_spec(dissim) -> dict:
    if type(dissim) is ScaledDifference:
        return {"type": "scaled", "weight": dissim.weight, "lo": dissim.lo, "hi": dissim.hi}
    if type(dissim) is AbsoluteDifference:
        return {"type": "absolute", "lo": dissim.lo, "hi": dissim.hi}
    raise StorageError(
        f"cannot persist numeric dissimilarity of type {type(dissim).__name__}; "
        "only AbsoluteDifference and ScaledDifference are declarative"
    )


def _numeric_from_spec(spec: dict):
    kind = spec.get("type")
    if kind == "absolute":
        return AbsoluteDifference(lo=spec.get("lo"), hi=spec.get("hi"))
    if kind == "scaled":
        return ScaledDifference(spec["weight"], lo=spec.get("lo"), hi=spec.get("hi"))
    raise StorageError(f"unknown numeric dissimilarity spec {spec!r}")


def save_dataset(dataset: Dataset, directory) -> pathlib.Path:
    """Write ``dataset`` to ``directory`` (created if needed). Returns the
    directory path."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    attributes = []
    for i, attr in enumerate(dataset.schema):
        entry: dict = {"name": attr.name, "kind": attr.kind}
        if attr.is_categorical:
            entry["cardinality"] = attr.cardinality
            if attr.labels is not None:
                entry["labels"] = list(attr.labels)
            dissim = dataset.space[i]
            if not isinstance(dissim, MatrixDissimilarity):
                raise StorageError(
                    f"attribute {attr.name!r}: categorical dissimilarity is not "
                    "matrix-backed and cannot be persisted"
                )
            matrix_file = f"dissim_{i}.csv"
            np.savetxt(path / matrix_file, dissim.matrix, delimiter=",", fmt="%.17g")
            entry["matrix"] = matrix_file
        else:
            entry["dissimilarity"] = _numeric_spec(dataset.space[i])
        attributes.append(entry)

    (path / "schema.json").write_text(
        json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "name": dataset.name,
                "attributes": attributes,
            },
            indent=2,
        )
    )

    with open(path / "records.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(dataset.schema.names())
        for record in dataset.records:
            writer.writerow(record)
    return path


def load_dataset(directory) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = pathlib.Path(directory)
    schema_file = path / "schema.json"
    if not schema_file.exists():
        raise StorageError(f"{path} does not contain a schema.json")
    try:
        meta = json.loads(schema_file.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt schema.json in {path}: {exc}") from exc
    if meta.get("format_version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported dataset format version {meta.get('format_version')!r}"
        )

    attrs: list[Attribute] = []
    dissims = []
    kinds: list[bool] = []  # is_categorical per attribute
    for i, entry in enumerate(meta.get("attributes", [])):
        if entry["kind"] == NUMERIC:
            attrs.append(Attribute(entry["name"], kind=NUMERIC))
            dissims.append(_numeric_from_spec(entry["dissimilarity"]))
            kinds.append(False)
        else:
            labels = tuple(entry["labels"]) if "labels" in entry else None
            attrs.append(
                Attribute(entry["name"], cardinality=entry["cardinality"], labels=labels)
            )
            matrix = np.loadtxt(path / entry["matrix"], delimiter=",", ndmin=2)
            dissims.append(MatrixDissimilarity(matrix, labels=labels))
            kinds.append(True)

    schema = Schema(attrs)
    space = DissimilaritySpace(dissims)

    records = []
    with open(path / "records.csv", newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != schema.names():
            raise StorageError(
                f"records.csv header {header!r} does not match schema {schema.names()!r}"
            )
        for row in reader:
            if len(row) != len(attrs):
                raise StorageError(f"malformed record row: {row!r}")
            records.append(
                tuple(
                    int(cell) if categorical else float(cell)
                    for cell, categorical in zip(row, kinds)
                )
            )
    return Dataset(schema, records, space, name=meta.get("name", "dataset"))
