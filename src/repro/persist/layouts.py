"""Persisting physical layouts.

The pre-sort behind SRS/TRS and the Z-order tiling behind T-SRS/T-TRS are
one-time, query-independent efforts (Section 4.2: "This sort is a
one-time effort, done as a pre-processing step"). A layout is fully
described by a permutation of record ids over a fixed dataset, so it can
be stored next to the dataset and reloaded instead of recomputed —
:meth:`repro.engine.ReverseSkylineEngine.save` /
:meth:`~repro.engine.ReverseSkylineEngine.open` use this.
"""

from __future__ import annotations

import json
import pathlib

from repro.data.dataset import Dataset
from repro.errors import StorageError

__all__ = ["save_layouts", "load_layouts", "layout_entries"]

_LAYOUTS_FILE = "layouts.json"


def save_layouts(directory, layouts: dict[str, list[int]]) -> pathlib.Path:
    """Write named record-id permutations to ``directory/layouts.json``."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    for name, ids in layouts.items():
        if sorted(ids) != list(range(len(ids))):
            raise StorageError(
                f"layout {name!r} is not a permutation of 0..{len(ids) - 1}"
            )
    out = path / _LAYOUTS_FILE
    out.write_text(json.dumps({n: list(ids) for n, ids in layouts.items()}))
    return out


def load_layouts(directory) -> dict[str, list[int]]:
    """Read layouts written by :func:`save_layouts`; ``{}`` if absent."""
    path = pathlib.Path(directory) / _LAYOUTS_FILE
    if not path.exists():
        return {}
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt {path}: {exc}") from exc
    if not isinstance(raw, dict):
        raise StorageError(f"{path} does not contain a layout mapping")
    return {str(name): [int(i) for i in ids] for name, ids in raw.items()}


def layout_entries(dataset: Dataset, ids: list[int]) -> list[tuple[int, tuple]]:
    """Materialise a stored permutation into the ``(record_id, values)``
    entries an algorithm's ``use_layout`` expects."""
    if sorted(ids) != list(range(len(dataset))):
        raise StorageError(
            f"stored layout has {len(ids)} ids for a {len(dataset)}-record "
            "dataset (or is not a permutation) — dataset and layout are out "
            "of sync"
        )
    return [(rid, dataset.records[rid]) for rid in ids]
