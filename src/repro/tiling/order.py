"""Tile-based data ordering (the T-SRS / T-TRS layout of Section 5.6)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.data.dataset import Dataset
from repro.sorting.keys import multiattribute_key, schema_order
from repro.tiling.tiles import TileGrid

__all__ = ["tile_order_dataset"]


def tile_order_dataset(
    dataset: Dataset,
    tiles_per_dim: int = 4,
    attribute_order: Sequence[int] | None = None,
) -> Dataset:
    """Reorder a dataset: tiles in Z-order, multi-attribute sort within
    each tile ("The objects within a tile are sorted as before and the
    tiles are ordered using a Z-order", Section 5.6)."""
    if attribute_order is None:
        attribute_order = schema_order(dataset.schema)
    grid = TileGrid.for_dataset(dataset, tiles_per_dim)
    inner_key = multiattribute_key(attribute_order)
    ordered = sorted(dataset.records, key=lambda r: (grid.z_index(r), inner_key(r)))
    return dataset.with_records(ordered, name=f"{dataset.name}[tiled]")
