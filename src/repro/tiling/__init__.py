"""Multi-dimensional tiling and Z-order layout (Section 5.6).

Public surface:

- :func:`z_encode` / :func:`z_decode` — Morton codes
- :class:`TileGrid` — record -> tile coordinates / Morton index
- :func:`tile_order_dataset` — the T-SRS / T-TRS physical layout
"""

from repro.tiling.order import tile_order_dataset
from repro.tiling.tiles import TileGrid
from repro.tiling.zorder import bits_needed, z_decode, z_encode

__all__ = ["TileGrid", "bits_needed", "tile_order_dataset", "z_decode", "z_encode"]
