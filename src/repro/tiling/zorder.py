"""Z-order (Morton) curve.

Section 5.6 orders multi-dimensional tiles "using a Z-order" so that the
physical layout is fair to every dimension, instead of privileging the
prefix attributes the way a multi-attribute sort does. The Morton code
interleaves the bits of the per-dimension tile coordinates.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import AlgorithmError

__all__ = ["z_encode", "z_decode", "bits_needed"]


def bits_needed(max_value: int) -> int:
    """Bits required to represent coordinates ``0..max_value``."""
    if max_value < 0:
        raise AlgorithmError(f"coordinate bound must be >= 0, got {max_value}")
    return max(1, max_value.bit_length())


def z_encode(coords: Sequence[int], bits: int) -> int:
    """Interleave ``len(coords)`` coordinates of ``bits`` bits each into a
    single Morton index. Bit ``b`` of dimension ``d`` lands at position
    ``b * ndims + d``."""
    ndims = len(coords)
    if ndims == 0:
        raise AlgorithmError("need at least one coordinate")
    limit = 1 << bits
    code = 0
    for d, c in enumerate(coords):
        if not 0 <= c < limit:
            raise AlgorithmError(f"coordinate {c} does not fit in {bits} bits")
        for b in range(bits):
            if c >> b & 1:
                code |= 1 << (b * ndims + d)
    return code


def z_decode(code: int, ndims: int, bits: int) -> tuple[int, ...]:
    """Invert :func:`z_encode`."""
    if ndims < 1:
        raise AlgorithmError(f"ndims must be >= 1, got {ndims}")
    if code < 0:
        raise AlgorithmError(f"Morton code must be >= 0, got {code}")
    coords = [0] * ndims
    for b in range(bits):
        for d in range(ndims):
            if code >> (b * ndims + d) & 1:
                coords[d] |= 1 << b
    return tuple(coords)
