"""Multi-dimensional tiling of the attribute space (Section 5.6).

Tiles are hyper-rectangles formed by splitting each attribute's value
range into a fixed number of stripes. Objects map to the tile containing
their value combination; tiles are laid out on disk in Z-order, and the
objects *within* a tile keep the multi-attribute sort. The result is a
physical clustering that is "fair to all the dimensions" — the property
T-SRS and T-TRS rely on for attribute-subset queries.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.errors import AlgorithmError
from repro.tiling.zorder import bits_needed, z_encode

__all__ = ["TileGrid"]


class TileGrid:
    """Maps records of a schema to tile coordinates and Morton indices.

    Parameters
    ----------
    schema:
        The dataset schema. Categorical attributes are striped over their
        value-id range; numeric attributes need explicit bounds.
    tiles_per_dim:
        Number of stripes per attribute (clamped to the attribute's
        cardinality for small categorical domains).
    numeric_bounds:
        ``attribute_index -> (lo, hi)`` for numeric attributes. Degenerate
        bounds (``lo == hi`` — a constant column) collapse the dimension
        to a single zero-width stripe instead of erroring: every record
        maps to coordinate 0 there and the dimension contributes nothing
        to the Morton index, which is exactly the clustering a constant
        attribute deserves.
    """

    def __init__(
        self,
        schema: Schema,
        tiles_per_dim: int = 4,
        numeric_bounds: dict[int, tuple[float, float]] | None = None,
    ) -> None:
        if tiles_per_dim < 1:
            raise AlgorithmError(f"tiles_per_dim must be >= 1, got {tiles_per_dim}")
        self.schema = schema
        self.tiles_per_dim = tiles_per_dim
        self._numeric_bounds = dict(numeric_bounds or {})
        self._dim_tiles: list[int] = []
        for i, attr in enumerate(schema):
            if attr.is_categorical:
                self._dim_tiles.append(min(tiles_per_dim, attr.cardinality))
            else:
                if i not in self._numeric_bounds:
                    raise AlgorithmError(
                        f"numeric attribute {attr.name!r} needs bounds for tiling"
                    )
                lo, hi = self._numeric_bounds[i]
                if lo > hi:
                    raise AlgorithmError(f"inverted numeric bounds for {attr.name!r}")
                self._dim_tiles.append(1 if lo == hi else tiles_per_dim)
        self._bits = bits_needed(max(self._dim_tiles) - 1)

    @classmethod
    def for_dataset(cls, dataset: Dataset, tiles_per_dim: int = 4) -> "TileGrid":
        """Build a grid, deriving numeric bounds from the data."""
        bounds: dict[int, tuple[float, float]] = {}
        for i, attr in enumerate(dataset.schema):
            if attr.is_numeric:
                column = [r[i] for r in dataset.records]
                if not column:
                    raise AlgorithmError("cannot derive numeric bounds from empty data")
                bounds[i] = (min(column), max(column))
        return cls(dataset.schema, tiles_per_dim, bounds)

    def tile_of(self, values: tuple) -> tuple[int, ...]:
        """Tile coordinates of one record."""
        coords = []
        for i, attr in enumerate(self.schema):
            stripes = self._dim_tiles[i]
            if attr.is_categorical:
                coord = values[i] * stripes // attr.cardinality
            else:
                lo, hi = self._numeric_bounds[i]
                if lo == hi:
                    coord = 0
                else:
                    frac = (values[i] - lo) / (hi - lo)
                    coord = min(stripes - 1, max(0, int(frac * stripes)))
            coords.append(coord)
        return tuple(coords)

    def z_index(self, values: tuple) -> int:
        """Morton index of the record's tile."""
        return z_encode(self.tile_of(values), self._bits)

    @property
    def num_tiles(self) -> int:
        total = 1
        for t in self._dim_tiles:
            total *= t
        return total
