"""Record sizing for page-capacity accounting.

The simulator does not serialise records to real bytes — it keeps Python
tuples — but page capacities must be *byte-accurate* so that IO counts
match what a real system with the paper's 32 KiB pages would incur. The
codec computes a fixed per-record size from the schema: categorical value
ids are 4-byte integers, numeric values 8-byte floats, plus a 4-byte
record id, mirroring a conventional fixed-width row layout.
"""

from __future__ import annotations

from repro.data.schema import Schema
from repro.errors import StorageError

__all__ = ["RecordCodec", "RECORD_ID_BYTES", "CATEGORICAL_BYTES", "NUMERIC_BYTES"]

RECORD_ID_BYTES = 4
CATEGORICAL_BYTES = 4
NUMERIC_BYTES = 8


class RecordCodec:
    """Fixed-width record layout for a given schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        size = RECORD_ID_BYTES
        for attr in schema:
            size += CATEGORICAL_BYTES if attr.is_categorical else NUMERIC_BYTES
        self._record_bytes = size

    @property
    def record_bytes(self) -> int:
        """Bytes one record occupies on a page (id + fixed-width values)."""
        return self._record_bytes

    def records_per_page(self, page_bytes: int) -> int:
        """How many records fit in one page of ``page_bytes``."""
        capacity = page_bytes // self._record_bytes
        if capacity < 1:
            raise StorageError(
                f"page size {page_bytes}B cannot hold a single "
                f"{self._record_bytes}B record"
            )
        return capacity

    def dataset_bytes(self, num_records: int) -> int:
        """Total bytes the dataset occupies (excluding page padding)."""
        if num_records < 0:
            raise StorageError(f"negative record count {num_records}")
        return num_records * self._record_bytes

    def pages_for(self, num_records: int, page_bytes: int) -> int:
        """Number of pages needed to store ``num_records``."""
        per_page = self.records_per_page(page_bytes)
        return (num_records + per_page - 1) // per_page
