"""Simulated storage substrate: paged disk, IO accounting, memory budgets.

Public surface:

- :class:`DiskSimulator` — creates page files, classifies sequential vs
  random page IOs with a disk-wide head position
- :class:`PageFile` / :class:`PageWriter` — fixed-size-page files
- :class:`RecordCodec` — byte-accurate record/page capacity accounting
- :class:`MemoryBudget` — the paper's "% of dataset size" memory knob
- :class:`IoStats` / :class:`IoCostModel` — counters and latency model
"""

from repro.storage.codec import (
    CATEGORICAL_BYTES,
    NUMERIC_BYTES,
    RECORD_ID_BYTES,
    RecordCodec,
)
from repro.storage.disk import DEFAULT_PAGE_BYTES, DiskSimulator, MemoryBudget
from repro.storage.iostats import IoCostModel, IoStats
from repro.storage.pagefile import PageFile, PageWriter

__all__ = [
    "CATEGORICAL_BYTES",
    "DEFAULT_PAGE_BYTES",
    "DiskSimulator",
    "IoCostModel",
    "IoStats",
    "MemoryBudget",
    "NUMERIC_BYTES",
    "PageFile",
    "PageWriter",
    "RECORD_ID_BYTES",
    "RecordCodec",
]
