"""The disk simulator: shared IO counters + page files + memory budgets.

The paper's experiments (Section 5.1) use a 32 KiB page size and express
memory as a percentage of the dataset size; both knobs live here.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.errors import MemoryBudgetError, StorageError, TransientIOError
from repro.obs import hooks as _obs
from repro.storage.codec import RecordCodec
from repro.storage.iostats import IoStats
from repro.storage.pagefile import PageFile

__all__ = ["DiskSimulator", "MemoryBudget", "DEFAULT_PAGE_BYTES"]

DEFAULT_PAGE_BYTES = 32 * 1024  # the paper's page size (Section 5.1)


class DiskSimulator:
    """A simulated disk: creates page files and counts their IOs.

    Sequential/random classification uses the disk-wide head position:
    an access is sequential iff it targets the page directly after the
    previously accessed page of the same file, with no intervening access
    to another file.

    With ``backing_dir`` set, files are **real** on-disk page files
    (:class:`~repro.storage.filestore.FilePageStore`) with byte-packed
    records — wall-clock times then include genuine filesystem IO, the
    paper's Section 5.1 response-time methodology. Without it (default),
    pages live in memory and only the counts are simulated.

    ``fault_injector`` (a :class:`~repro.faults.FaultInjector`) makes
    page IOs fail transiently; every page IO then runs under
    ``retry_policy`` (exponential backoff, default
    :class:`~repro.faults.RetryPolicy`), with retries accounted in
    ``stats`` and exhaustion surfacing as
    :class:`~repro.errors.RetryExhaustedError`. Real ``OSError`` from a
    file-backed store takes the same retry path.
    """

    def __init__(
        self,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        backing_dir=None,
        *,
        fault_injector=None,
        retry_policy=None,
    ) -> None:
        if page_bytes < 16:
            raise StorageError(f"page size {page_bytes}B is unusably small")
        self.page_bytes = page_bytes
        self.backing_dir = backing_dir
        self.fault_injector = fault_injector
        if retry_policy is None:
            from repro.faults.retry import RetryPolicy

            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy
        self.stats = IoStats()
        self._files: dict[str, object] = {}
        self._head: tuple[int, int] | None = None  # (file id, page id)
        self._io_flushed = False  # close() exports stats to repro.obs once

    def create_file(self, name: str, codec: RecordCodec):
        """Create an empty page file with the given record layout."""
        if name in self._files:
            raise StorageError(f"file {name!r} already exists")
        if self.backing_dir is not None:
            from repro.storage.filestore import FilePageStore

            pf = FilePageStore(self, name, codec, self.backing_dir)
        else:
            pf = PageFile(self, name, codec)
        self._files[name] = pf
        return pf

    def drop_file(self, name: str) -> None:
        pf = self._files.pop(name, None)
        if pf is not None and hasattr(pf, "close"):
            pf.close()

    def rename_file(self, old: str, new: str) -> None:
        """Re-register a file under a new name (keeps it open)."""
        pf = self._files.pop(old, None)
        if pf is None:
            raise StorageError(f"no file named {old!r}")
        if new in self._files:
            raise StorageError(f"file {new!r} already exists")
        pf.name = new
        self._files[new] = pf

    def close(self) -> None:
        """Release any real file handles (no-op for in-memory files).

        Also the disk's observability hook point: the accumulated
        :class:`~repro.storage.iostats.IoStats` are flushed to the
        :mod:`repro.obs` registry exactly once per disk — aggregate
        export on close instead of per-access hooks keeps the page-IO
        hot path untouched.
        """
        for pf in self._files.values():
            if hasattr(pf, "close"):
                pf.close()
        if _obs.enabled and not self._io_flushed:
            self._io_flushed = True
            _obs.record_io(self.stats)

    def __enter__(self) -> "DiskSimulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def execute_page_io(self, pagefile, page_id: int, *, write: bool, fn):
        """Run one page IO under fault injection and the retry policy.

        ``fn(torn)`` performs (or re-performs) the raw operation; when
        ``torn`` is true the store must persist only a prefix of the
        page's records and then raise the transient failure itself (the
        commit must be idempotent so a retry repairs the torn slot).
        Transient failures
        — injected or raised by ``fn`` as
        :class:`~repro.errors.TransientIOError` — are retried with
        backoff; exhaustion raises
        :class:`~repro.errors.RetryExhaustedError`. Retries are counted
        in ``stats`` while the sequential/random page counts stay the
        logical (fault-free) cost.
        """
        injector = self.fault_injector
        appending = write and page_id == pagefile.num_pages
        attempt = 0
        while True:
            try:
                torn = False
                if injector is not None:
                    action = injector.page_io_action(
                        pagefile.name, page_id, write=write, appending=appending
                    )
                    if action.latency_s > 0:
                        self.retry_policy.sleep(action.latency_s)
                    if action.kind == "fail":
                        self.stats.faults_seen += 1
                        raise injector.io_error(
                            "write" if write else "read", pagefile.name, page_id
                        )
                    if action.kind == "torn":
                        self.stats.faults_seen += 1
                        torn = True
                return fn(torn)
            except TransientIOError as exc:
                attempt += 1
                if write:
                    self.stats.write_retries += 1
                else:
                    self.stats.read_retries += 1
                self.retry_policy.backoff(attempt, exc)

    def file(self, name: str) -> PageFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no file named {name!r}") from None

    def count_access(self, pagefile: PageFile, page_id: int, *, write: bool) -> None:
        """Record one page access (called by :class:`PageFile`)."""
        position = (id(pagefile), page_id)
        sequential = (
            self._head is not None
            and self._head[0] == position[0]
            and page_id == self._head[1] + 1
        )
        if write:
            if sequential:
                self.stats.sequential_writes += 1
            else:
                self.stats.random_writes += 1
        else:
            if sequential:
                self.stats.sequential_reads += 1
            else:
                self.stats.random_reads += 1
        self._head = position

    def count_peek(self) -> None:
        """Record one uncharged ``peek_page`` read. Never moves the scan
        head, so a peek cannot turn a neighbouring charged access from
        sequential into random (or vice versa)."""
        self.stats.peek_reads += 1

    def load_dataset(self, dataset: Dataset, name: str = "data") -> PageFile:
        """Materialise a dataset into a page file **without** charging IO —
        this models data already resident on disk before the query starts.
        Record ids are the dataset's record positions."""
        return self.load_entries(dataset.schema, enumerate(dataset.records), name)

    def load_entries(self, schema, entries, name: str = "data"):
        """Like :meth:`load_dataset` but from explicit ``(record_id,
        values)`` pairs — used when a layout step (sorting, tiling) has
        re-ordered records while keeping their original ids."""
        codec = RecordCodec(schema)
        pf = self.create_file(name, codec)
        pf.stage_entries(entries)
        return pf


class MemoryBudget:
    """A memory budget expressed in pages, as the paper's "% of dataset
    size" knob (Sections 5.3/5.4).

    Parameters
    ----------
    pages:
        Number of page-sized buffers available to the operator.
    """

    def __init__(self, pages: int) -> None:
        if pages < 1:
            raise MemoryBudgetError(f"memory budget must be >= 1 page, got {pages}")
        self.pages = pages

    @classmethod
    def fraction_of(
        cls,
        dataset: Dataset,
        fraction: float,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        *,
        minimum_pages: int = 1,
    ) -> "MemoryBudget":
        """Budget equal to ``fraction`` of the dataset's on-disk size,
        rounded down to whole pages but never below ``minimum_pages``."""
        if not 0 < fraction:
            raise MemoryBudgetError(f"fraction must be positive, got {fraction}")
        codec = RecordCodec(dataset.schema)
        total_pages = codec.pages_for(len(dataset), page_bytes)
        pages = max(minimum_pages, int(total_pages * fraction))
        return cls(pages)

    def records_capacity(self, codec: RecordCodec, page_bytes: int) -> int:
        """How many records fit in the whole budget."""
        return self.pages * codec.records_per_page(page_bytes)

    def split_for_second_phase(self) -> tuple[int, int]:
        """Second-phase layout (Section 4.1): one page is reserved to scan
        the database, the rest hold the batch of first-phase results.
        Returns ``(scan_pages, batch_pages)``."""
        if self.pages < 2:
            raise MemoryBudgetError(
                "second phase needs >= 2 pages (1 scan page + >= 1 result page)"
            )
        return 1, self.pages - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryBudget(pages={self.pages})"
