"""Real file-backed page store.

The paper measures response time "as the running time of a program where
all the disk writes and reads are performed as necessary, by writing and
reading from files on disk" (Section 5.1). The default
:class:`~repro.storage.pagefile.PageFile` keeps pages in memory (fast,
deterministic, exact IO *counts*); this module provides the same
interface over **actual files**, so wall-clock response times include
genuine filesystem IO. Select it by constructing the simulator with a
backing directory::

    disk = DiskSimulator(page_bytes=32 * 1024, backing_dir="/tmp/rsdata")

Record layout inside a page: fixed-width records (4-byte signed id;
4-byte signed int per categorical value, 8-byte double per numeric
value), zero-padded to ``page_bytes``. Per-page record counts live in an
in-memory page directory — the metadata a real system keeps cached — so
page capacity is identical to the in-memory backend and the two produce
bit-identical batch boundaries, check counts and IO counts.
"""

from __future__ import annotations

import pathlib
import struct
from collections.abc import Iterable, Iterator

from repro.errors import StorageError, TransientIOError
from repro.storage.codec import RecordCodec
from repro.storage.pagefile import PageWriter

__all__ = ["FilePageStore"]


class FilePageStore:
    """PageFile-compatible store over one real file on disk."""

    def __init__(self, disk, name: str, codec: RecordCodec, directory) -> None:
        self._disk = disk
        self.name = name
        self.codec = codec
        self.page_bytes = disk.page_bytes
        self.records_per_page = codec.records_per_page(disk.page_bytes)
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        safe = name.replace("/", "_")
        self._path = directory / f"{safe}.pages"
        self._fh = open(self._path, "w+b")
        self._page_counts: list[int] = []  # the cached page directory
        self._num_records = 0
        fmt = "<i"
        for attr in codec.schema:
            fmt += "i" if attr.is_categorical else "d"
        self._record_struct = struct.Struct(fmt)

    # -- sizing ----------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self._page_counts)

    @property
    def num_records(self) -> int:
        return self._num_records

    # -- page IO -----------------------------------------------------------
    def _pack_page(self, records: list[tuple[int, tuple]]) -> bytes:
        parts = [
            self._record_struct.pack(record_id, *values)
            for record_id, values in records
        ]
        blob = b"".join(parts)
        if len(blob) > self.page_bytes:
            raise StorageError(
                f"{self.name}: page overflow ({len(blob)}B > {self.page_bytes}B)"
            )
        return blob + b"\0" * (self.page_bytes - len(blob))

    def _unpack_page(self, blob: bytes, count: int) -> list[tuple[int, tuple]]:
        out = []
        offset = 0
        size = self._record_struct.size
        for _ in range(count):
            fields = self._record_struct.unpack_from(blob, offset)
            out.append((fields[0], tuple(fields[1:])))
            offset += size
        return out

    def _check_open(self) -> None:
        if self._fh.closed:
            raise StorageError(f"{self.name}: store is closed")

    def _set_count(self, page_id: int, count: int) -> None:
        """Idempotently commit one page-directory slot, keeping
        ``num_records`` derived from the directory itself (same contract
        as ``PageFile._set_page``)."""
        if page_id == len(self._page_counts):
            self._page_counts.append(count)
            self._num_records += count
        else:
            self._num_records += count - self._page_counts[page_id]
            self._page_counts[page_id] = count

    def read_page(self, page_id: int) -> list[tuple[int, tuple]]:
        if not 0 <= page_id < self.num_pages:
            raise StorageError(f"{self.name}: page {page_id} out of range")
        self._check_open()

        def do_read(torn: bool) -> bytes:
            try:
                self._fh.seek(page_id * self.page_bytes)
                return self._fh.read(self.page_bytes)
            except OSError as exc:  # a real disk fault: retryable
                raise TransientIOError(
                    f"read failed on {self.name!r} page {page_id}: {exc}",
                    op="read",
                    file=self.name,
                    page_id=page_id,
                ) from exc

        blob = self._disk.execute_page_io(self, page_id, write=False, fn=do_read)
        self._disk.count_access(self, page_id, write=False)
        return self._unpack_page(blob, self._page_counts[page_id])

    def write_page(self, page_id: int, records: list[tuple[int, tuple]]) -> None:
        if len(records) > self.records_per_page:
            raise StorageError(
                f"{self.name}: {len(records)} records exceed page capacity "
                f"{self.records_per_page}"
            )
        if not 0 <= page_id <= self.num_pages:
            raise StorageError(f"{self.name}: page {page_id} out of range for write")
        self._check_open()
        records = list(records)
        blob = self._pack_page(records)

        def do_write(torn: bool) -> None:
            try:
                self._fh.seek(page_id * self.page_bytes)
                if torn:
                    # Persist a prefix of the records (and their bytes),
                    # then fail; the retry rewrites the full page over
                    # the torn slot.
                    keep = len(records) // 2
                    self._fh.write(self._pack_page(records[:keep]))
                    self._set_count(page_id, keep)
                    raise TransientIOError(
                        f"torn append on {self.name!r} page {page_id}",
                        op="write",
                        file=self.name,
                        page_id=page_id,
                    )
                self._fh.write(blob)
                self._set_count(page_id, len(records))
            except OSError as exc:  # a real disk fault: retryable
                raise TransientIOError(
                    f"write failed on {self.name!r} page {page_id}: {exc}",
                    op="write",
                    file=self.name,
                    page_id=page_id,
                ) from exc

        self._disk.execute_page_io(self, page_id, write=True, fn=do_write)
        self._disk.count_access(self, page_id, write=True)

    # -- scanning -----------------------------------------------------------
    def scan(self, start_page: int = 0) -> Iterator[tuple[int, list[tuple[int, tuple]]]]:
        for page_id in range(start_page, self.num_pages):
            yield page_id, self.read_page(page_id)

    def scan_records(self) -> Iterator[tuple[int, tuple]]:
        for _, records in self.scan():
            yield from records

    def writer(self) -> PageWriter:
        return PageWriter(self)

    def truncate(self) -> None:
        self._check_open()
        self._fh.truncate(0)
        self._page_counts.clear()
        self._num_records = 0

    def peek_page(self, page_id: int) -> list[tuple[int, tuple]]:
        """One page's records without *charged* IO accounting (counted as
        ``IoStats.peek_reads``); mirrors :meth:`PageFile.peek_page` so the
        numpy plan builders work against file-backed stores too. Bypasses
        the fault injector: peeks model offline preprocessing."""
        if not 0 <= page_id < self.num_pages:
            raise StorageError(f"{self.name}: page {page_id} out of range")
        self._check_open()
        self._disk.count_peek()
        self._fh.seek(page_id * self.page_bytes)
        blob = self._fh.read(self.page_bytes)
        return self._unpack_page(blob, self._page_counts[page_id])

    def peek_all_records(self) -> list[tuple[int, tuple]]:
        """All records without IO accounting — assertions/tests only."""
        out = []
        for page_id, count in enumerate(self._page_counts):
            self._fh.seek(page_id * self.page_bytes)
            out.extend(self._unpack_page(self._fh.read(self.page_bytes), count))
        return out

    def stage_entries(self, entries: Iterable[tuple[int, tuple]]) -> None:
        """Fill the file with records **without** charging IO — models data
        already resident on disk before a query starts."""
        page: list[tuple[int, tuple]] = []
        for entry in entries:
            page.append(entry)
            if len(page) == self.records_per_page:
                self._write_unmetered(page)
                page = []
        if page:
            self._write_unmetered(page)

    def _write_unmetered(self, records: list[tuple[int, tuple]]) -> None:
        self._check_open()
        blob = self._pack_page(records)
        self._fh.seek(self.num_pages * self.page_bytes)
        self._fh.write(blob)
        self._page_counts.append(len(records))
        self._num_records += len(records)

    def close(self) -> None:
        """Release the file handle. Idempotent: double-close (e.g. an
        explicit close followed by ``__exit__`` or a ``finally`` sweep)
        is a no-op, and a flush failure can never leak the descriptor."""
        if not self._fh.closed:
            try:
                self._fh.flush()
            finally:
                self._fh.close()

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FilePageStore({self.name!r}, pages={self.num_pages}, "
            f"records={self.num_records}, path={self._path})"
        )
