"""IO accounting for the simulated disk.

The paper's IO metric (Section 5.1) is the number of **page IOs**, split
into sequential and random accesses because "Random IO is costlier than
sequential IO" and the two are plotted separately in every IO figure
(Figs. 5, 6, 9, 12, 15, 17). An access is sequential when it touches the
page immediately following the previously accessed page *of the same
file*; everything else (seeks back to a scan position, jumps to a scratch
area) is random — the same accounting the paper describes in Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IoStats", "IoCostModel"]


@dataclass
class IoStats:
    """Mutable counters of simulated page IOs.

    The retry counters account for the recovery machinery in
    :mod:`repro.faults`: ``read_retries``/``write_retries`` count page
    IOs re-attempted after a transient fault, ``faults_seen`` counts the
    transient faults themselves (injected or real). Successful retries do
    **not** inflate the sequential/random counts — those stay the
    *logical* IO cost, so fault-free and recovered runs report identical
    page IOs and the overhead of recovery is visible separately.
    """

    sequential_reads: int = 0
    random_reads: int = 0
    sequential_writes: int = 0
    random_writes: int = 0
    read_retries: int = 0
    write_retries: int = 0
    faults_seen: int = 0
    #: Uncharged page reads (``peek_page``) made by offline preprocessing
    #: such as the numpy backend's plan builds. Deliberately **excluded**
    #: from ``sequential``/``random``/``total`` — those stay the paper's
    #: logical IO metric — but counted so the hidden prepare-time IO is
    #: observable (kept last: callers construct IoStats positionally).
    peek_reads: int = 0

    @property
    def sequential(self) -> int:
        return self.sequential_reads + self.sequential_writes

    @property
    def random(self) -> int:
        return self.random_reads + self.random_writes

    @property
    def total(self) -> int:
        return self.sequential + self.random

    @property
    def retries(self) -> int:
        return self.read_retries + self.write_retries

    def reset(self) -> None:
        self.sequential_reads = 0
        self.random_reads = 0
        self.sequential_writes = 0
        self.random_writes = 0
        self.read_retries = 0
        self.write_retries = 0
        self.faults_seen = 0
        self.peek_reads = 0

    def snapshot(self) -> "IoStats":
        """An immutable-by-convention copy for before/after accounting."""
        return IoStats(
            self.sequential_reads,
            self.random_reads,
            self.sequential_writes,
            self.random_writes,
            self.read_retries,
            self.write_retries,
            self.faults_seen,
            self.peek_reads,
        )

    def delta(self, before: "IoStats") -> "IoStats":
        """Counters accumulated since ``before`` (a prior snapshot)."""
        return IoStats(
            self.sequential_reads - before.sequential_reads,
            self.random_reads - before.random_reads,
            self.sequential_writes - before.sequential_writes,
            self.random_writes - before.random_writes,
            self.read_retries - before.read_retries,
            self.write_retries - before.write_retries,
            self.faults_seen - before.faults_seen,
            self.peek_reads - before.peek_reads,
        )

    def __add__(self, other: "IoStats") -> "IoStats":
        return IoStats(
            self.sequential_reads + other.sequential_reads,
            self.random_reads + other.random_reads,
            self.sequential_writes + other.sequential_writes,
            self.random_writes + other.random_writes,
            self.read_retries + other.read_retries,
            self.write_retries + other.write_retries,
            self.faults_seen + other.faults_seen,
            self.peek_reads + other.peek_reads,
        )


@dataclass(frozen=True)
class IoCostModel:
    """Latency model translating page counts into milliseconds.

    Defaults approximate a 2011-era SATA disk reading 32 KiB pages:
    sequential pages stream at ~100 MB/s (≈0.3 ms/page), random pages pay
    a seek + rotation (≈8 ms). Experiments that only care about *counts*
    can ignore this; response-time figures use it.
    """

    sequential_ms: float = 0.3
    random_ms: float = 8.0

    def cost_ms(self, stats: IoStats) -> float:
        """Total modeled IO latency for the given counters."""
        return stats.sequential * self.sequential_ms + stats.random * self.random_ms
