"""Simulated page files.

A :class:`PageFile` is a sequence of fixed-size pages, each holding up to
``records_per_page`` records, living on a shared :class:`DiskSimulator`.
Every page access is classified as sequential or random based on the
*disk-wide* last-accessed position: reading page ``p+1`` of the same file
right after page ``p`` is sequential; any jump — including switching files
(e.g. between the database scan and the scratch area, Section 4.1) — is
random. Records are stored as ``(record_id, values_tuple)`` pairs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import StorageError, TransientIOError
from repro.storage.codec import RecordCodec

__all__ = ["PageFile", "PageWriter"]


class PageFile:
    """One simulated file of pages. Construct via
    :meth:`repro.storage.disk.DiskSimulator.create_file`."""

    def __init__(self, disk, name: str, codec: RecordCodec) -> None:
        self._disk = disk
        self.name = name
        self.codec = codec
        self.records_per_page = codec.records_per_page(disk.page_bytes)
        self._pages: list[list[tuple[int, tuple]]] = []
        self._num_records = 0

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def num_records(self) -> int:
        return self._num_records

    def _set_page(self, page_id: int, records: list[tuple[int, tuple]]) -> None:
        """Idempotently commit one page slot, keeping ``num_records``
        derived from actual page contents — overwriting a page with
        fewer/more records (or re-committing over a torn append) always
        leaves the count equal to what :meth:`scan_records` yields."""
        if page_id == len(self._pages):
            self._pages.append(records)
            self._num_records += len(records)
        else:
            self._num_records += len(records) - len(self._pages[page_id])
            self._pages[page_id] = records

    def read_page(self, page_id: int) -> list[tuple[int, tuple]]:
        """Read one page, counting the IO. Returns the page's records."""
        if not 0 <= page_id < len(self._pages):
            raise StorageError(f"{self.name}: page {page_id} out of range")

        def do_read(torn: bool) -> list[tuple[int, tuple]]:
            return list(self._pages[page_id])

        records = self._disk.execute_page_io(self, page_id, write=False, fn=do_read)
        self._disk.count_access(self, page_id, write=False)
        return records

    def write_page(self, page_id: int, records: list[tuple[int, tuple]]) -> None:
        """Overwrite or append (``page_id == num_pages``) one page."""
        if len(records) > self.records_per_page:
            raise StorageError(
                f"{self.name}: {len(records)} records exceed page capacity "
                f"{self.records_per_page}"
            )
        if not 0 <= page_id <= len(self._pages):
            raise StorageError(f"{self.name}: page {page_id} out of range for write")
        records = list(records)

        def do_write(torn: bool) -> None:
            if torn:
                # A torn append persists only a prefix; the accounting
                # stays consistent and the retry re-commits the full page
                # over the torn slot.
                self._set_page(page_id, records[: len(records) // 2])
                raise TransientIOError(
                    f"torn append on {self.name!r} page {page_id}",
                    op="write",
                    file=self.name,
                    page_id=page_id,
                )
            self._set_page(page_id, list(records))

        self._disk.execute_page_io(self, page_id, write=True, fn=do_write)
        self._disk.count_access(self, page_id, write=True)

    def scan(self, start_page: int = 0) -> Iterator[tuple[int, list[tuple[int, tuple]]]]:
        """Sequentially yield ``(page_id, records)`` from ``start_page``.

        The first page read after a jump is counted random, the rest
        sequential — exactly a resumed scan's cost profile."""
        for page_id in range(start_page, len(self._pages)):
            yield page_id, self.read_page(page_id)

    def scan_records(self) -> Iterator[tuple[int, tuple]]:
        """Sequentially yield every ``(record_id, values)`` in the file."""
        for _, records in self.scan():
            yield from records

    def writer(self) -> "PageWriter":
        """An appending writer that packs records into full pages."""
        return PageWriter(self)

    def truncate(self) -> None:
        """Drop all pages (no IO is charged; deallocation is metadata)."""
        self._pages.clear()
        self._num_records = 0

    def peek_all_records(self) -> list[tuple[int, tuple]]:
        """All records **without** IO accounting — for assertions/tests only."""
        return [entry for page in self._pages for entry in page]

    def peek_page(self, page_id: int) -> list[tuple[int, tuple]]:
        """One page's records **without charged** IO accounting — for
        offline preprocessing that models work done outside the measured
        query (e.g. the numpy backend's batch-structure cache). Counted
        separately as ``IoStats.peek_reads`` so prepare-time reads stay
        observable without polluting the paper's IO metric."""
        if not 0 <= page_id < len(self._pages):
            raise StorageError(f"{self.name}: page {page_id} out of range")
        self._disk.count_peek()
        return list(self._pages[page_id])

    def stage_entries(self, entries: Iterable[tuple[int, tuple]]) -> None:
        """Fill the file with records **without** charging IO — models data
        already resident on disk before a query starts."""
        page: list[tuple[int, tuple]] = []
        for entry in entries:
            page.append(entry)
            if len(page) == self.records_per_page:
                self._pages.append(page)
                self._num_records += len(page)
                page = []
        if page:
            self._pages.append(page)
            self._num_records += len(page)

    def adopt_staged(
        self, pages: list[list[tuple[int, tuple]]], num_records: int
    ) -> None:
        """Fill an empty file from already-packed pages **without**
        charging IO — the memoised form of :meth:`stage_entries`. The
        inner page lists are shared, never copied: every reader copies
        on access and every writer replaces whole page slots, so adoption
        is O(pages) regardless of record count."""
        if self._pages:
            raise StorageError(f"{self.name}: adopt_staged needs an empty file")
        self._pages = list(pages)
        self._num_records = num_records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageFile({self.name!r}, pages={self.num_pages}, "
            f"records={self.num_records})"
        )


class PageWriter:
    """Buffers appended records into page-sized chunks, writing each full
    page with one page IO (use as a context manager or call :meth:`close`)."""

    def __init__(self, pagefile: PageFile) -> None:
        self._file = pagefile
        self._buffer: list[tuple[int, tuple]] = []
        self._closed = False

    def append(self, record_id: int, values: tuple) -> None:
        if self._closed:
            raise StorageError("writer already closed")
        self._buffer.append((record_id, values))
        if len(self._buffer) == self._file.records_per_page:
            self._flush()

    def extend(self, entries: Iterable[tuple[int, tuple]]) -> None:
        for record_id, values in entries:
            self.append(record_id, values)

    def _flush(self) -> None:
        if self._buffer:
            self._file.write_page(self._file.num_pages, self._buffer)
            self._buffer = []

    def close(self) -> None:
        if not self._closed:
            self._flush()
            self._closed = True

    def __enter__(self) -> "PageWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
