"""Command-line interface.

Run as ``python -m repro`` or via the ``repro-skyline`` console script::

    repro-skyline generate --kind synthetic --rows 5000 --values 24 24 24 --out data/
    repro-skyline info data/
    repro-skyline query data/ --query 3,7,1 --algorithm TRS --memory 0.1
    repro-skyline influence data/ --probes 3,7,1 0,0,0 --algorithm TRS
    repro-skyline sweep memory --dataset ci
"""

from __future__ import annotations

import argparse
import sys

from repro.advisor import recommend
from repro.core.registry import ALGORITHMS, make_algorithm
from repro.core.skyband import ReverseSkybandTRS
from repro.data.stats import profile_dataset
from repro.data.realistic import census_income_like, forest_cover_like
from repro.data.synthetic import synthetic_dataset
from repro.dissim.analysis import analyze_metricity
from repro.dissim.matrix import MatrixDissimilarity
from repro.errors import ReproError
from repro.experiments.sweeps import attrs_sweep, memory_sweep, size_sweep, values_sweep
from repro.experiments.tables import format_measurements
from repro.experiments.workloads import ci_dataset, fc_dataset, queries_for, standard_synthetic
from repro.influence.analysis import influence_analysis
from repro.kernels import BACKENDS
from repro.persist.format import load_dataset, save_dataset

__all__ = ["main", "build_parser"]


def _parse_query(text: str, dataset) -> tuple:
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != dataset.num_attributes:
        raise ReproError(
            f"query has {len(parts)} values; dataset has {dataset.num_attributes} attributes"
        )
    values = []
    for part, attr in zip(parts, dataset.schema):
        values.append(int(part) if attr.is_categorical else float(part))
    return dataset.validate_query(tuple(values))


def _cmd_generate(args) -> int:
    if args.kind == "synthetic":
        if not args.values:
            raise ReproError("--values is required for synthetic datasets")
        ds = synthetic_dataset(args.rows, args.values, seed=args.seed)
    elif args.kind == "ci":
        ds = census_income_like(target_rows=args.rows, seed=args.seed)
    elif args.kind == "fc":
        ds = forest_cover_like(target_rows=args.rows, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown dataset kind {args.kind!r}")
    path = save_dataset(ds, args.out)
    print(f"wrote {ds.describe()} to {path}")
    return 0


def _cmd_info(args) -> int:
    ds = load_dataset(args.dataset)
    print(ds.describe())
    for i, attr in enumerate(ds.schema):
        if attr.is_categorical:
            dissim = ds.space[i]
            assert isinstance(dissim, MatrixDissimilarity)
            report = analyze_metricity(dissim)
            print(f"  {attr.name}: {report.summary()}")
        else:
            print(f"  {attr.name}: numeric")
    return 0


def _cmd_query(args) -> int:
    ds = load_dataset(args.dataset)
    query = _parse_query(args.query, ds)
    algorithm = args.algorithm
    if args.shards and algorithm == "TRS":
        # Sharding with the stock default routes through scatter-gather;
        # explicitly chosen non-shardable algorithms error (exit 2).
        algorithm = "SGTRS"
    if (args.index or args.recall_target is not None) and algorithm == "TRS":
        # Candidate-index requested with the stock default routes through
        # the indexed family the same way sharding does.
        algorithm = "ITRS"
    algo = make_algorithm(
        algorithm,
        ds,
        backend=args.backend,
        shards=args.shards,
        recall_target=args.recall_target,
        memory_fraction=args.memory,
    )
    result = algo.run(query)
    s = result.stats
    print(f"algorithm : {result.algorithm}")
    print(f"backend   : {result.backend}")
    if getattr(result, "num_shards", 0):
        sizes = ",".join(str(p.records) for p in result.shard_stats)
        print(f"shards    : {result.num_shards} ({result.strategy}; sizes {sizes})")
    if getattr(result, "index_nodes", 0):
        print(
            f"index     : {result.mode}, {result.index_nodes} nodes, "
            f"candidate fraction {result.candidate_fraction:.4f}"
        )
        if result.mode == "approximate":
            print(
                f"recall    : measured {result.measured_recall:.3f} "
                f"(target {result.recall_target})"
            )
    print(f"result    : {list(result.record_ids)}")
    print(f"checks    : {s.checks:,}")
    print(f"io        : {s.io.sequential} sequential + {s.io.random} random page IOs")
    print(f"wall time : {s.wall_time_s * 1000:.1f} ms")
    return 0


def _cmd_influence(args) -> int:
    ds = load_dataset(args.dataset)
    probes = {text: _parse_query(text, ds) for text in args.probes}
    report = influence_analysis(
        ds, probes, algorithm=args.algorithm, memory_fraction=args.memory
    )
    for label, score in report.ranked():
        print(f"{label}: {score}")
    print(f"skew (gini): {report.skew():.3f}")
    return 0


def _parse_subset_query(text: str, dataset, indices) -> tuple:
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != len(indices):
        raise ReproError(
            f"query has {len(parts)} values; --attributes selects {len(indices)}"
        )
    values = []
    for part, i in zip(parts, indices):
        attr = dataset.schema[i]
        values.append(int(part) if attr.is_categorical else float(part))
    return tuple(values)


def _cmd_batch(args) -> int:
    from repro.engine import ReverseSkylineEngine

    ds = load_dataset(args.dataset)
    texts = list(args.queries or [])
    if args.queries_file:
        try:
            with open(args.queries_file, encoding="utf-8") as fh:
                texts += [line.strip() for line in fh if line.strip()]
        except OSError as exc:
            raise ReproError(f"cannot read --queries-file: {exc}") from exc
    if not texts:
        raise ReproError("no queries given; use --queries and/or --queries-file")
    if args.attributes:
        if args.k > 1:
            raise ReproError("--attributes cannot be combined with -k > 1")
        # Resolve names up front: an unknown attribute is one readable
        # batch-level error, not a traceback and not N per-query failures.
        indices = [ds.schema.index_of(name) for name in args.attributes]
        queries = [_parse_subset_query(t, ds, indices) for t in texts] * args.repeat
        kind = "subset"
    else:
        queries = [_parse_query(text, ds) for text in texts] * args.repeat
        kind = "skyband" if args.k > 1 else "query"
    fault_injector = None
    retry_policy = None
    if args.inject_faults:
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan.storm(args.inject_faults)
        fault_injector = FaultInjector(plan, seed=args.fault_seed)
    if args.retries is not None:
        from repro.faults import RetryPolicy

        retry_policy = RetryPolicy(max_attempts=args.retries)
    engine = ReverseSkylineEngine(
        ds,
        algorithm=args.algorithm,
        memory_fraction=args.memory,
        fault_injector=fault_injector,
        retry_policy=retry_policy,
        backend=args.backend,
        shards=args.shards,
        index=args.index,
        recall_target=args.recall_target,
    )
    instrument = bool(args.trace or args.metrics_out)
    if instrument:
        from repro.obs import QueryProfiler

        profile_cm = QueryProfiler()
    else:
        from contextlib import nullcontext

        profile_cm = nullcontext()
    with profile_cm as prof:
        report = engine.query_many(
            queries,
            kind=kind,
            k=args.k,
            attributes=args.attributes,
            pool=args.pool,
            workers=args.workers,
            cache=not args.no_cache,
            plan=args.plan,
            shm=args.shm,
        )
    if instrument:
        _write_obs_artifacts(args, prof)
    if args.show_results:
        for spec, result in zip(report.specs, report.results):
            answer = "FAILED" if result is None else list(result.record_ids)
            print(f"{','.join(map(str, spec.query))} -> {answer}")
    s = report.summary()
    print(f"queries     : {s['queries']} ({s['computed']} computed, "
          f"{s['cache_hits']} cache hits, {s['failed']} failed)")
    print(f"pool        : {s['pool']} x {s['workers']}")
    if args.plan:
        print(f"planned     : {s['planned']} answered via shared scans")
    print(f"backend     : {', '.join(s['backends']) or 'n/a'}")
    print(f"checks      : {s['checks']:,}")
    print(f"page ios    : {s['page_ios']:,}")
    if fault_injector is not None:
        print(f"fault model : rate={args.inject_faults}, seed={args.fault_seed}")
        print(f"recovery    : {s['faults_seen']} storage faults seen, "
              f"{s['io_retries']} page-IO retries")
    print(f"batch time  : {s['batch_wall_time_s'] * 1000:.1f} ms "
          f"({s['queries'] / s['batch_wall_time_s']:.0f} queries/s)")
    print(f"speedup     : {s['speedup_vs_serial_sum']:.2f}x vs summed query time")
    for i, error in report.failures():
        print(f"failed [{i}]: {error.describe()}", file=sys.stderr)
    return 3 if report.failed else 0


def _write_obs_artifacts(args, prof) -> None:
    """Persist a batch's captured trace / metrics (``batch --trace`` /
    ``--metrics-out``)."""
    from repro.obs import snapshot_to_prometheus, trace_to_json

    if args.trace:
        try:
            with open(args.trace, "w", encoding="utf-8") as fh:
                fh.write(trace_to_json(prof.trace))
        except OSError as exc:
            raise ReproError(f"cannot write --trace file: {exc}") from exc
        print(f"trace       : {len(prof.trace)} spans -> {args.trace}")
    if args.metrics_out:
        try:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(snapshot_to_prometheus(prof.snapshot))
        except OSError as exc:
            raise ReproError(f"cannot write --metrics-out file: {exc}") from exc
        print(f"metrics     : prometheus exposition -> {args.metrics_out}")


def _cmd_serve(args) -> int:
    """Run the resident query service until shutdown."""
    from repro.engine import ReverseSkylineEngine
    from repro.serve import ServiceConfig
    from repro.serve.server import run_server

    ds = load_dataset(args.dataset)
    engine = ReverseSkylineEngine(
        ds,
        algorithm=args.algorithm,
        memory_fraction=args.memory,
        backend=args.backend,
        index=args.index,
        recall_target=args.recall_target,
        log_queries=True,
    )
    config = ServiceConfig(
        pool=args.pool,
        workers=args.workers,
        queue_depth=args.queue_depth,
        batch_window_s=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        tenant_rate=args.rate,
        tenant_burst=args.burst,
        default_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms else None
        ),
        plan=args.plan,
        shm=args.shm,
        cache=not args.no_cache,
    )
    print(
        f"serving {ds.describe()} on {args.host}:{args.port or '<ephemeral>'} "
        f"({config.pool} x {config.workers}, window {args.window_ms}ms)"
    )
    run_server(
        engine,
        config,
        host=args.host,
        port=args.port,
        max_requests=args.max_requests,
        port_file=args.port_file,
    )
    return 0


def _cmd_serve_load(args) -> int:
    """Closed-loop load driver against a running serve endpoint."""
    from repro.serve.client import run_closed_loop

    ds = load_dataset(args.dataset)
    texts = list(args.queries or [])
    if args.queries_file:
        try:
            with open(args.queries_file, encoding="utf-8") as fh:
                texts += [line.strip() for line in fh if line.strip()]
        except OSError as exc:
            raise ReproError(f"cannot read --queries-file: {exc}") from exc
    if texts:
        queries = [_parse_query(text, ds) for text in texts]
    else:
        queries = list(queries_for(ds, args.auto_queries))
    report = run_closed_loop(
        args.host,
        args.port,
        queries,
        clients=args.clients,
        requests_per_client=args.requests,
        tenant_per_client=args.tenant_per_client,
        deadline_ms=args.deadline_ms,
    )
    d = report.as_dict()
    print(f"clients     : {d['clients']} x {args.requests} requests")
    print(f"outcomes    : {d['ok']} ok, {d['shed']} shed, "
          f"{d['deadline']} deadline, {d['failed']} failed")
    print(f"throughput  : {d['qps']:.1f} qps over {d['wall_s'] * 1000:.0f} ms")
    print(f"latency     : p50 {d['p50_ms']:.2f} ms, p95 {d['p95_ms']:.2f} ms, "
          f"p99 {d['p99_ms']:.2f} ms")
    print(f"server path : {d['planned']} shared-scan, {d['cached']} cached")
    if "retry_after_min_s" in d:
        print(f"retry-after : {d['retry_after_min_s']}s .. {d['retry_after_max_s']}s")
    return 0


def _cmd_metrics(args) -> int:
    """Run an instrumented batch and emit the metrics exposition."""
    from repro.engine import ReverseSkylineEngine
    from repro.obs import (
        QueryProfiler,
        render_trace,
        snapshot_to_json,
        snapshot_to_prometheus,
    )

    ds = load_dataset(args.dataset)
    texts = list(args.queries or [])
    if args.queries_file:
        try:
            with open(args.queries_file, encoding="utf-8") as fh:
                texts += [line.strip() for line in fh if line.strip()]
        except OSError as exc:
            raise ReproError(f"cannot read --queries-file: {exc}") from exc
    if not texts:
        raise ReproError("no queries given; use --queries and/or --queries-file")
    queries = [_parse_query(text, ds) for text in texts]
    engine = ReverseSkylineEngine(
        ds, algorithm=args.algorithm, memory_fraction=args.memory
    )
    with QueryProfiler() as prof:
        report = engine.query_many(
            queries, pool=args.pool, workers=args.workers, cache=not args.no_cache
        )
    render = snapshot_to_json if args.format == "json" else snapshot_to_prometheus
    text = render(prof.snapshot)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
        except OSError as exc:
            raise ReproError(f"cannot write --out file: {exc}") from exc
        print(f"wrote {args.format} metrics to {args.out}")
    else:
        print(text, end="")
    if args.breakdown:
        print("# per-phase attribution (self time)", file=sys.stderr)
        for row in prof.breakdown():
            print(
                f"# {row.name}: n={row.count} total={row.total_s * 1000:.1f}ms "
                f"self={row.self_s * 1000:.1f}ms",
                file=sys.stderr,
            )
    if args.show_trace:
        print(render_trace(prof.trace), file=sys.stderr)
    return 3 if report.failed else 0


def _cmd_skyband(args) -> int:
    ds = load_dataset(args.dataset)
    query = _parse_query(args.query, ds)
    algo = ReverseSkybandTRS(ds, k=args.k, memory_fraction=args.memory)
    result = algo.run(query)
    print(f"reverse {args.k}-skyband: {list(result.record_ids)}")
    print(f"checks: {result.stats.checks:,}")
    return 0


def _cmd_profile(args) -> int:
    ds = load_dataset(args.dataset)
    profile = profile_dataset(ds)
    print(profile.summary())
    for ap in profile.attributes:
        kind = (
            f"categorical({ap.domain_cardinality})" if ap.is_categorical else "numeric"
        )
        print(
            f"  {ap.name}: {kind}, observed={ap.observed_distinct}, "
            f"entropy={ap.entropy_bits:.2f} bits, top-share={ap.top_value_share:.1%}"
        )
    return 0


def _cmd_advise(args) -> int:
    ds = load_dataset(args.dataset)
    rec = recommend(
        ds,
        subset_queries_expected=args.subset_queries,
        calibrate=args.calibrate,
    )
    print(f"recommended algorithm: {rec.algorithm}")
    print(f"attribute order      : {list(rec.attribute_order)}")
    print(f"memory fraction      : {rec.memory_fraction}")
    if rec.index:
        mode = (
            "exact mode"
            if rec.recall_target is None
            else f"recall_target={rec.recall_target}"
        )
        print(f"candidate index      : {mode}")
    for line in rec.rationale:
        print(f"  - {line}")
    if rec.calibration:
        for name, checks in sorted(rec.calibration.items()):
            print(f"  measured {name}: {checks:,.0f} checks/query")
    return 0


def _cmd_backends(args) -> int:
    """List every algorithm with its backend/dispatch capabilities."""
    from repro.kernels import available_backends, resolve_algorithm

    header = (
        f"{'algorithm':<12} {'backends':<18} {'auto-dispatch':<14} "
        f"{'shards':<7} {'index':<6}"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(ALGORITHMS):
        cls = ALGORITHMS[name]
        backends = ",".join(available_backends(name))
        upgraded = resolve_algorithm(name, "auto")
        if upgraded != name:
            auto = f"-> {upgraded}"
        elif getattr(cls, "accepts_backend", False):
            auto = "self"  # the class takes backend= and dispatches inside
        else:
            auto = "-"
        shards = "yes" if getattr(cls, "accepts_shards", False) else "-"
        index = "yes" if getattr(cls, "accepts_index", False) else "-"
        print(f"{name:<12} {backends:<18} {auto:<14} {shards:<7} {index:<6}")
    return 0


_SWEEPS = {
    "memory": lambda ds: memory_sweep(ds, queries=queries_for(ds, 2)),
    "size": lambda ds: size_sweep(),
    "values": lambda ds: values_sweep(),
    "attrs": lambda ds: attrs_sweep(),
}
_SWEEP_PARAMS = {"memory": ("memory",), "size": ("n", "density"),
                 "values": ("values", "density"), "attrs": ("attrs", "density")}


def _cmd_report(args) -> int:
    from repro.experiments.report import write_report

    out = write_report(args.results, args.out)
    print(f"wrote {out}")
    return 0


def _cmd_sweep(args) -> int:
    if args.dataset == "ci":
        ds = ci_dataset()
    elif args.dataset == "fc":
        ds = fc_dataset()
    else:
        ds = standard_synthetic()
    rows = _SWEEPS[args.sweep](ds)
    print(format_measurements(rows, param_keys=_SWEEP_PARAMS[args.sweep]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description="Reverse skyline retrieval with arbitrary non-metric similarity measures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and persist a dataset")
    gen.add_argument("--kind", choices=("synthetic", "ci", "fc"), default="synthetic")
    gen.add_argument("--rows", type=int, default=5000)
    gen.add_argument("--values", type=int, nargs="+", help="per-attribute cardinalities")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="describe a persisted dataset")
    info.add_argument("dataset")
    info.set_defaults(func=_cmd_info)

    query = sub.add_parser("query", help="run one reverse-skyline query")
    query.add_argument("dataset")
    query.add_argument("--query", required=True, help="comma-separated attribute values")
    query.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="TRS")
    query.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="compute backend: python (scalar), numpy (vectorised kernels), "
             "or auto (numpy when the algorithm/dataset qualify)",
    )
    query.add_argument("--memory", type=float, default=0.10)
    query.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="partition the dataset into K shards and answer via the "
             "scatter-gather algorithm (SGTRS)",
    )
    query.add_argument(
        "--index", action="store_true",
        help="answer through the ITRS candidate-generation index "
             "(exact mode: results stay bit-identical)",
    )
    query.add_argument(
        "--recall-target", type=float, default=None, metavar="Q",
        help="approximate index mode: target pruning-recall quantile in "
             "[0,1]; the result reports its measured recall",
    )
    query.set_defaults(func=_cmd_query)

    infl = sub.add_parser("influence", help="rank probe objects by RS size")
    infl.add_argument("dataset")
    infl.add_argument("--probes", nargs="+", required=True)
    infl.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="TRS")
    infl.add_argument("--memory", type=float, default=0.10)
    infl.set_defaults(func=_cmd_influence)

    batch = sub.add_parser(
        "batch", help="answer a batch of queries over a pooled, cached executor"
    )
    batch.add_argument("dataset")
    batch.add_argument("--queries", nargs="+", help="comma-separated query objects")
    batch.add_argument("--queries-file", help="file with one query per line")
    batch.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="TRS")
    batch.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="compute backend: python (scalar), numpy (vectorised kernels), "
             "or auto (numpy when the algorithm/dataset qualify)",
    )
    batch.add_argument("--memory", type=float, default=0.10)
    batch.add_argument("--pool", choices=("serial", "thread", "process"), default="thread")
    batch.add_argument("--workers", type=int, default=None)
    batch.add_argument("--no-cache", action="store_true")
    batch.add_argument(
        "--plan", action=argparse.BooleanOptionalAction, default=False,
        help="group compatible queries and answer each group through one "
             "shared multi-query scan (results stay bit-identical)",
    )
    batch.add_argument(
        "--shm", action=argparse.BooleanOptionalAction, default=False,
        help="process pool: publish the dataset and built plans to "
             "workers over shared memory instead of pickling",
    )
    batch.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="answer reverse-skyline queries through K-shard scatter-gather",
    )
    batch.add_argument(
        "--index", action="store_true",
        help="answer through the ITRS candidate-generation index",
    )
    batch.add_argument(
        "--recall-target", type=float, default=None, metavar="Q",
        help="approximate index mode: target pruning-recall quantile",
    )
    batch.add_argument("-k", type=int, default=1, help="k>1 answers reverse k-skybands")
    batch.add_argument("--repeat", type=int, default=1, help="replay the batch N times")
    batch.add_argument("--show-results", action="store_true")
    batch.add_argument(
        "--attributes", nargs="+", metavar="NAME",
        help="answer over this attribute subset (queries give values for "
             "exactly these attributes, in order)",
    )
    batch.add_argument(
        "--inject-faults", type=float, default=0.0, metavar="RATE",
        help="chaos-test the batch: inject transient storage/worker faults "
             "at RATE and recover via retries",
    )
    batch.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the deterministic fault schedule")
    batch.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max attempts per faulting operation before a query is "
             "reported failed (default 4)",
    )
    batch.add_argument(
        "--trace", metavar="FILE", default=None,
        help="capture the batch's span tree and write it as JSON",
    )
    batch.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write the batch's metrics in Prometheus exposition format",
    )
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve", help="run the resident query service over a dataset"
    )
    serve.add_argument("dataset")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral; see --port-file)")
    serve.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="TRS")
    serve.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="compute backend preference for the warm engine",
    )
    serve.add_argument("--memory", type=float, default=0.10)
    serve.add_argument(
        "--index", action="store_true",
        help="serve through the ITRS candidate index (built at warm-up)",
    )
    serve.add_argument(
        "--recall-target", type=float, default=None, metavar="Q",
        help="approximate index mode: target pruning-recall quantile",
    )
    serve.add_argument("--pool", choices=("thread", "process"), default="thread")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admitted-but-unfinished requests before shedding")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="micro-batch collection window")
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-tenant token-bucket refill (req/s; 0 = off)")
    serve.add_argument("--burst", type=float, default=0.0,
                       help="per-tenant bucket capacity (default max(1, rate))")
    serve.add_argument("--deadline-ms", type=float, default=0.0,
                       help="default per-request deadline (0 = unbounded)")
    serve.add_argument(
        "--plan", action=argparse.BooleanOptionalAction, default=True,
        help="warm the numpy plan cache and coalesce via shared scans",
    )
    serve.add_argument(
        "--shm", action=argparse.BooleanOptionalAction, default=True,
        help="process pool: feed workers through shared memory",
    )
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="shut down after N query responses (CI/tests)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port here once listening")
    serve.set_defaults(func=_cmd_serve)

    load = sub.add_parser(
        "serve-load", help="drive closed-loop load against a serve endpoint"
    )
    load.add_argument("dataset", help="dataset the server is serving "
                      "(for query parsing/generation)")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, required=True)
    load.add_argument("--queries", nargs="+", help="comma-separated query objects")
    load.add_argument("--queries-file", help="file with one query per line")
    load.add_argument("--auto-queries", type=int, default=16,
                      help="generate N workload queries when none are given")
    load.add_argument("--clients", type=int, default=4)
    load.add_argument("--requests", type=int, default=25,
                      help="requests per client")
    load.add_argument("--deadline-ms", type=float, default=None)
    load.add_argument("--tenant-per-client", action="store_true",
                      help="each client claims its own tenant id")
    load.set_defaults(func=_cmd_serve_load)

    metrics = sub.add_parser(
        "metrics", help="run an instrumented batch and emit its metrics"
    )
    metrics.add_argument("dataset")
    metrics.add_argument("--queries", nargs="+", help="comma-separated query objects")
    metrics.add_argument("--queries-file", help="file with one query per line")
    metrics.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="TRS")
    metrics.add_argument("--memory", type=float, default=0.10)
    metrics.add_argument("--pool", choices=("serial", "thread", "process"),
                         default="serial")
    metrics.add_argument("--workers", type=int, default=None)
    metrics.add_argument("--no-cache", action="store_true")
    metrics.add_argument("--format", choices=("prom", "json"), default="prom")
    metrics.add_argument("--out", metavar="FILE", default=None,
                         help="write the exposition here instead of stdout")
    metrics.add_argument("--breakdown", action="store_true",
                         help="print per-phase wall-time attribution to stderr")
    metrics.add_argument("--show-trace", action="store_true",
                         help="print the span tree to stderr")
    metrics.set_defaults(func=_cmd_metrics)

    band = sub.add_parser("skyband", help="run a reverse k-skyband query")
    band.add_argument("dataset")
    band.add_argument("--query", required=True)
    band.add_argument("-k", type=int, default=2)
    band.add_argument("--memory", type=float, default=0.10)
    band.set_defaults(func=_cmd_skyband)

    prof = sub.add_parser("profile", help="profile a persisted dataset")
    prof.add_argument("dataset")
    prof.set_defaults(func=_cmd_profile)

    advise = sub.add_parser("advise", help="recommend an algorithm for a dataset")
    advise.add_argument("dataset")
    advise.add_argument("--subset-queries", action="store_true")
    advise.add_argument("--calibrate", action="store_true")
    advise.set_defaults(func=_cmd_advise)

    backends = sub.add_parser(
        "backends",
        help="list algorithms with their backend and capability flags",
    )
    backends.set_defaults(func=_cmd_backends)

    sweep = sub.add_parser("sweep", help="run a paper experiment sweep")
    sweep.add_argument("sweep", choices=sorted(_SWEEPS))
    sweep.add_argument("--dataset", choices=("ci", "fc", "synthetic"), default="synthetic")
    sweep.set_defaults(func=_cmd_sweep)

    report = sub.add_parser(
        "report", help="aggregate benchmark artifacts into one markdown file"
    )
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--out", default="REPORT.md")
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
