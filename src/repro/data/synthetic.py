"""Synthetic dataset generators (paper Section 5.2).

The paper generates categorical data whose *value indices* follow a normal
distribution: "we assume an ordering of values for each attribute, and
generate data to ensure that the distribution is normal and hence is
concentrated around the middle values in the chosen ordering ... We use a
uniform random number generator and rejection sampling. We choose the
variance to be 3, and the mean to be the index of the middle [value]".
Dissimilarities between values are still drawn uniformly from [0, 1], so
nearby indices are *not* designed to be similar — the space stays
non-metric.

Also provided: uniform and Zipf value distributions (robustness studies),
and a mixed categorical+numeric generator for the Section 6 experiments.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema, NUMERIC
from repro.dissim.generators import random_dissimilarity
from repro.dissim.numeric import AbsoluteDifference
from repro.dissim.space import DissimilaritySpace
from repro.errors import SchemaError

__all__ = [
    "normal_value_sampler",
    "synthetic_dataset",
    "mixed_dataset",
    "NORMAL",
    "UNIFORM",
    "ZIPF",
]

NORMAL = "normal"
UNIFORM = "uniform"
ZIPF = "zipf"

# The paper's choice for the normal distribution over value indices.
_PAPER_VARIANCE = 3.0


def normal_value_sampler(
    cardinality: int, rng: np.random.Generator, variance: float = _PAPER_VARIANCE
):
    """Rejection sampler over ``0..cardinality-1`` with a normal envelope
    centred on the middle index, exactly the paper's construction.

    Returns a zero-argument callable producing one value id per call.
    """
    mean = (cardinality - 1) / 2.0
    sigma = math.sqrt(variance)

    def density_at(i: int) -> float:
        return math.exp(-((i - mean) ** 2) / (2 * variance))

    peak = density_at(round(mean))

    def sample() -> int:
        # Rejection sampling with a uniform proposal (the paper's method).
        while True:
            candidate = int(rng.integers(0, cardinality))
            if rng.random() * peak <= density_at(candidate):
                return candidate

    # Keep metadata for vectorised batch sampling.
    sample.cardinality = cardinality
    sample.mean = mean
    sample.sigma = sigma
    return sample


def _batch_values(
    distribution: str,
    cardinality: int,
    n: int,
    rng: np.random.Generator,
    *,
    variance: float = _PAPER_VARIANCE,
    zipf_s: float = 1.2,
) -> np.ndarray:
    """Vectorised sampling of ``n`` value ids for one attribute."""
    if distribution == UNIFORM:
        return rng.integers(0, cardinality, size=n)
    if distribution == NORMAL:
        # Vectorised rejection sampling, equivalent to normal_value_sampler
        # but orders of magnitude faster for large n.
        mean = (cardinality - 1) / 2.0
        weights = np.exp(-((np.arange(cardinality) - mean) ** 2) / (2 * variance))
        weights = weights / weights.sum()
        return rng.choice(cardinality, size=n, p=weights)
    if distribution == ZIPF:
        ranks = np.arange(1, cardinality + 1, dtype=float)
        weights = ranks ** (-zipf_s)
        weights = weights / weights.sum()
        values = rng.choice(cardinality, size=n, p=weights)
        # Shuffle which value id gets which rank so id order carries no signal.
        perm = rng.permutation(cardinality)
        return perm[values]
    raise SchemaError(f"unknown distribution {distribution!r}")


def synthetic_dataset(
    num_records: int,
    cardinalities: Sequence[int],
    *,
    seed: int = 7,
    distribution: str = NORMAL,
    variance: float = _PAPER_VARIANCE,
    name: str | None = None,
) -> Dataset:
    """Generate a categorical dataset with U[0,1] random dissimilarities.

    Parameters
    ----------
    num_records:
        Number of objects ``n``.
    cardinalities:
        Per-attribute domain sizes, e.g. ``[50] * 5`` for the paper's
        standard synthetic configuration.
    distribution:
        ``"normal"`` (paper default), ``"uniform"`` or ``"zipf"``.
    """
    if num_records < 0:
        raise SchemaError(f"num_records must be >= 0, got {num_records}")
    rng = np.random.default_rng(seed)
    schema = Schema.categorical(list(cardinalities))
    space = DissimilaritySpace(
        [random_dissimilarity(c, rng) for c in cardinalities]
    )
    columns = [
        _batch_values(distribution, c, num_records, rng, variance=variance)
        for c in cardinalities
    ]
    records = list(zip(*(col.tolist() for col in columns))) if num_records else []
    if name is None:
        name = f"synthetic-{distribution}(n={num_records}, v={list(cardinalities)})"
    return Dataset(schema, records, space, validate=False, name=name)


def mixed_dataset(
    num_records: int,
    cardinalities: Sequence[int],
    numeric_ranges: Sequence[tuple[float, float]],
    *,
    seed: int = 7,
    distribution: str = NORMAL,
    name: str | None = None,
) -> Dataset:
    """Generate a dataset mixing categorical and numeric attributes
    (Section 6). Categorical attributes come first, then one numeric
    attribute per ``(lo, hi)`` range with uniform values and the
    ``|a - b|`` dissimilarity."""
    rng = np.random.default_rng(seed)
    attrs = [
        Attribute(f"A{i + 1}", cardinality=c) for i, c in enumerate(cardinalities)
    ]
    dissims = [random_dissimilarity(c, rng) for c in cardinalities]
    for j, (lo, hi) in enumerate(numeric_ranges):
        if lo >= hi:
            raise SchemaError(f"numeric range {j} is empty: [{lo}, {hi}]")
        attrs.append(Attribute(f"N{j + 1}", kind=NUMERIC))
        dissims.append(AbsoluteDifference(lo=lo, hi=hi))
    schema = Schema(attrs)
    space = DissimilaritySpace(dissims)
    cat_cols = [
        _batch_values(distribution, c, num_records, rng).tolist() for c in cardinalities
    ]
    num_cols = [
        rng.uniform(lo, hi, size=num_records).tolist() for lo, hi in numeric_ranges
    ]
    records = list(zip(*(cat_cols + num_cols))) if num_records else []
    if name is None:
        name = f"mixed(n={num_records}, cat={list(cardinalities)}, num={len(numeric_ranges)})"
    return Dataset(schema, records, space, validate=False, name=name)
