"""Surrogates for the paper's real datasets (Section 5.2/5.3).

The paper evaluates on two UCI datasets that are not redistributable here:

- **Census-Income (CI)**: 199,523 people, 5 chosen attributes with
  91, 17, 5, 53 and 7 distinct values — a *dense* dataset (6.9%).
- **ForestCover (FC)**: 581,012 cells, 7 chosen attributes with
  67, 551, 2, 700, 2, 7 and 2 distinct values — *very sparse* (0.04%).

Because the paper assigns **random U[0,1] dissimilarities** to the values
of both datasets (Section 5.2), the dataset-specific signal its
experiments exercise is (a) the *density* (rows over the attribute-domain
cross product) — the quantity every synthetic sweep in Section 5.4 is
plotted against — (b) the relative cardinality profile, and (c) the
skewed marginal value distribution. The surrogates reproduce all three at
a pure-Python-friendly scale: cardinalities are shrunk by a uniform
factor and the row count re-derived so the **density matches the paper's
exactly**, keeping the pruning behaviour (and hence the phase-1/phase-2
regime) faithful. Pass ``scale=1.0`` for the paper's literal sizes.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.synthetic import NORMAL, synthetic_dataset
from repro.errors import SchemaError

__all__ = [
    "CENSUS_INCOME_CARDINALITIES",
    "FOREST_COVER_CARDINALITIES",
    "CENSUS_INCOME_ROWS",
    "FOREST_COVER_ROWS",
    "density_preserving_profile",
    "census_income_like",
    "forest_cover_like",
]

# Published attribute profiles (Section 5.2).
CENSUS_INCOME_CARDINALITIES = [91, 17, 5, 53, 7]
FOREST_COVER_CARDINALITIES = [67, 551, 2, 700, 2, 7, 2]
CENSUS_INCOME_ROWS = 199_523
FOREST_COVER_ROWS = 581_012


def _domain_size(cards: list[int]) -> int:
    size = 1
    for c in cards:
        size *= c
    return size


def density_preserving_profile(
    cardinalities: list[int], paper_rows: int, target_rows: int
) -> tuple[list[int], int]:
    """Shrink a cardinality profile by a uniform factor and re-derive the
    row count so the dataset density equals the paper's.

    Small domains (binary flags etc.) are clamped at 2 values, so the
    solver searches the factor numerically for the row count closest to
    ``target_rows`` (never exceeding it by more than the search step
    allows). Returns ``(scaled_cardinalities, scaled_rows)``.
    """
    if target_rows < 16:
        raise SchemaError(f"target_rows too small: {target_rows}")
    paper_density = paper_rows / _domain_size(cardinalities)
    best: tuple[list[int], int] | None = None
    factor = 1.0
    while factor >= 0.02:
        cards = [max(2, round(c * factor)) for c in cardinalities]
        rows = max(16, round(paper_density * _domain_size(cards)))
        if rows <= target_rows:
            best = (cards, rows)
            break
        best = (cards, rows)
        factor -= 0.01
    assert best is not None
    return best


def census_income_like(
    *, scale: float = 0.015, seed: int = 11, target_rows: int | None = None
) -> Dataset:
    """A Census-Income-shaped dataset: the published cardinality profile
    shrunk uniformly, rows re-derived to hold the paper's 6.9% density,
    skewed marginals, random U[0,1] value dissimilarities.

    ``scale`` expresses the target row count as a fraction of the paper's
    199,523 rows (``scale=1.0`` reproduces the paper literally).
    """
    if target_rows is None:
        target_rows = max(64, round(CENSUS_INCOME_ROWS * scale))
    cards, rows = density_preserving_profile(
        CENSUS_INCOME_CARDINALITIES, CENSUS_INCOME_ROWS, target_rows
    )
    return synthetic_dataset(
        rows,
        cards,
        seed=seed,
        distribution=NORMAL,
        variance=max(3.0, (max(cards) / 4.0) ** 2),
        name=f"census-income-like(n={rows})",
    )


def forest_cover_like(
    *, scale: float = 0.0085, seed: int = 13, target_rows: int | None = None
) -> Dataset:
    """A ForestCover-shaped dataset: the published 7-attribute profile
    (including its binary attributes) shrunk uniformly, rows re-derived to
    hold the paper's ~0.04% density."""
    if target_rows is None:
        target_rows = max(64, round(FOREST_COVER_ROWS * scale))
    cards, rows = density_preserving_profile(
        FOREST_COVER_CARDINALITIES, FOREST_COVER_ROWS, target_rows
    )
    return synthetic_dataset(
        rows,
        cards,
        seed=seed,
        distribution=NORMAL,
        variance=max(3.0, (max(cards) / 4.0) ** 2),
        name=f"forest-cover-like(n={rows})",
    )
