"""Schemas for multi-attribute objects.

Objects in the paper are fixed-arity tuples over a mix of categorical
attributes (finite domains, integer value ids) and numeric attributes
(floats, Section 6). A :class:`Schema` validates records and carries
attribute metadata used for sorting, tree construction and storage sizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.errors import SchemaError

__all__ = ["Attribute", "Schema", "CATEGORICAL", "NUMERIC"]

CATEGORICAL = "categorical"
NUMERIC = "numeric"


@dataclass(frozen=True)
class Attribute:
    """One attribute of the object schema.

    Parameters
    ----------
    name:
        Human-readable attribute name (unique within a schema).
    kind:
        ``"categorical"`` or ``"numeric"``.
    cardinality:
        Domain size for categorical attributes; ``None`` for numeric.
    labels:
        Optional value labels for categorical attributes
        (``labels[value_id]`` is the display name).
    """

    name: str
    kind: str = CATEGORICAL
    cardinality: int | None = None
    labels: tuple[str, ...] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in (CATEGORICAL, NUMERIC):
            raise SchemaError(f"unknown attribute kind {self.kind!r}")
        if self.kind == CATEGORICAL:
            if self.cardinality is None or self.cardinality < 1:
                raise SchemaError(
                    f"categorical attribute {self.name!r} needs cardinality >= 1, "
                    f"got {self.cardinality!r}"
                )
            if self.labels is not None and len(self.labels) != self.cardinality:
                raise SchemaError(
                    f"attribute {self.name!r}: {len(self.labels)} labels for "
                    f"cardinality {self.cardinality}"
                )
        elif self.cardinality is not None:
            raise SchemaError(f"numeric attribute {self.name!r} cannot have a cardinality")

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC

    def validate_value(self, value) -> None:
        """Raise :class:`SchemaError` when ``value`` is outside the domain."""
        if self.is_categorical:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(
                    f"attribute {self.name!r}: expected int value id, got {value!r}"
                )
            if not 0 <= value < self.cardinality:
                raise SchemaError(
                    f"attribute {self.name!r}: value id {value} outside "
                    f"[0, {self.cardinality})"
                )
        else:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SchemaError(
                    f"attribute {self.name!r}: expected numeric value, got {value!r}"
                )

    def label_of(self, value_id: int) -> str:
        """Display name of a categorical value (falls back to the id)."""
        if self.labels is not None and 0 <= value_id < len(self.labels):
            return self.labels[value_id]
        return str(value_id)


class Schema:
    """An ordered collection of :class:`Attribute` with unique names."""

    def __init__(self, attributes: Sequence[Attribute]) -> None:
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._attributes = tuple(attributes)
        self._index = {a.name: i for i, a in enumerate(self._attributes)}

    @classmethod
    def categorical(cls, cardinalities: Sequence[int], names: Sequence[str] | None = None):
        """Shorthand for an all-categorical schema from domain sizes."""
        if names is None:
            names = [f"A{i + 1}" for i in range(len(cardinalities))]
        if len(names) != len(cardinalities):
            raise SchemaError("names and cardinalities must have equal length")
        return cls([Attribute(n, CATEGORICAL, c) for n, c in zip(names, cardinalities)])

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def num_attributes(self) -> int:
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self):
        return iter(self._attributes)

    def __getitem__(self, i: int) -> Attribute:
        return self._attributes[i]

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def index_of(self, name: str) -> int:
        """Position of the attribute called ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r}") from None

    def names(self) -> list[str]:
        return [a.name for a in self._attributes]

    def cardinalities(self) -> list[int | None]:
        return [a.cardinality for a in self._attributes]

    def is_fully_categorical(self) -> bool:
        return all(a.is_categorical for a in self._attributes)

    def validate_record(self, record: tuple) -> None:
        """Raise :class:`SchemaError` unless ``record`` conforms."""
        if len(record) != len(self._attributes):
            raise SchemaError(
                f"record has {len(record)} values, schema has {len(self._attributes)}"
            )
        for attr, value in zip(self._attributes, record):
            attr.validate_value(value)

    def project(self, attribute_indices: Sequence[int]) -> "Schema":
        """Schema over a subset of attributes (Section 5.6 subset queries)."""
        if not attribute_indices:
            raise SchemaError("attribute subset must be non-empty")
        return Schema([self._attributes[i] for i in attribute_indices])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{a.name}:{a.cardinality if a.is_categorical else 'num'}" for a in self._attributes
        )
        return f"Schema({parts})"
