"""Dataset profiling.

The paper's experiments show that reverse-skyline cost is governed by a
handful of dataset statistics: density (Section 5.4's x-axis everywhere),
per-attribute cardinalities and their skew (group sizes near the AL-Tree
root), and the duplicate rate (duplicate pairs prune each other almost
for free). This module computes those statistics, plus a sampling
estimate of how likely a random object is to find a pruner — the
quantity that separates the cheap dense regime from the expensive sparse
one.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import ExperimentError
from repro.skyline.domination import dominates

__all__ = ["AttributeProfile", "DatasetProfile", "profile_dataset", "estimate_pruner_rate"]


@dataclass(frozen=True)
class AttributeProfile:
    """Statistics of one attribute's value distribution."""

    name: str
    is_categorical: bool
    domain_cardinality: int | None
    observed_distinct: int
    entropy_bits: float
    top_value_share: float

    @property
    def effective_cardinality(self) -> float:
        """2^entropy — the number of equally likely values that would
        produce the same entropy (drives expected AL-Tree group sizes)."""
        return 2.0 ** self.entropy_bits


@dataclass(frozen=True)
class DatasetProfile:
    """Whole-dataset statistics."""

    name: str
    num_records: int
    num_attributes: int
    density: float | None
    duplicate_rate: float
    distinct_records: int
    attributes: tuple[AttributeProfile, ...]

    def summary(self) -> str:
        parts = [
            f"{self.name}: n={self.num_records}, m={self.num_attributes}",
            f"distinct={self.distinct_records}",
            f"duplicates={self.duplicate_rate:.1%}",
        ]
        if self.density is not None:
            parts.append(f"density={self.density:.3g}")
        return ", ".join(parts)


def _entropy_bits(counter: Counter, total: int) -> float:
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counter.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def profile_dataset(dataset: Dataset) -> DatasetProfile:
    """Compute the :class:`DatasetProfile` of ``dataset``."""
    n = len(dataset)
    attrs: list[AttributeProfile] = []
    for i, attr in enumerate(dataset.schema):
        counter = Counter(r[i] for r in dataset.records)
        entropy = _entropy_bits(counter, n)
        top_share = (max(counter.values()) / n) if counter else 0.0
        attrs.append(
            AttributeProfile(
                name=attr.name,
                is_categorical=attr.is_categorical,
                domain_cardinality=attr.cardinality,
                observed_distinct=len(counter),
                entropy_bits=entropy,
                top_value_share=top_share,
            )
        )
    distinct = len(set(dataset.records))
    duplicate_rate = 0.0 if n == 0 else (n - distinct) / n
    density = None
    if dataset.schema.is_fully_categorical() and n:
        density = dataset.density()
    return DatasetProfile(
        name=dataset.name,
        num_records=n,
        num_attributes=dataset.num_attributes,
        density=density,
        duplicate_rate=duplicate_rate,
        distinct_records=distinct,
        attributes=tuple(attrs),
    )


def estimate_pruner_rate(
    dataset: Dataset,
    queries,
    *,
    samples: int = 200,
    seed: int = 7,
) -> float:
    """Estimate the probability that a random object has *some* pruner for
    a random query from ``queries`` — high in dense data (cheap phase 1),
    low in sparse data (expensive full scans). Sampling-based: ``samples``
    (object, query) pairs, each checked against up to 64 random candidate
    pruners."""
    if not dataset.records:
        raise ExperimentError("cannot estimate pruner rate on an empty dataset")
    queries = [dataset.validate_query(q) for q in queries]
    if not queries:
        raise ExperimentError("need at least one query")
    rng = np.random.default_rng(seed)
    n = len(dataset)
    hits = 0
    for _ in range(samples):
        q = queries[int(rng.integers(0, len(queries)))]
        x_id = int(rng.integers(0, n))
        x = dataset.records[x_id]
        candidates = rng.integers(0, n, size=min(64, n))
        if any(
            int(y_id) != x_id
            and dominates(dataset.space, dataset.records[int(y_id)], q, x)
            for y_id in candidates
        ):
            hits += 1
    return hits / samples
