"""Data model and dataset generators.

Public surface:

- :class:`Attribute` / :class:`Schema` — object schemas
- :class:`Dataset` — records + schema + dissimilarity space
- :func:`synthetic_dataset` / :func:`mixed_dataset` — paper Section 5.2 generators
- :func:`census_income_like` / :func:`forest_cover_like` — real-data surrogates
- :func:`running_example` — the paper's Table 1 / Figure 1 example
- :func:`random_query` / :func:`perturbed_query` / :func:`query_batch`
"""

from repro.data.convert import dataset_from_rows, query_from_labels
from repro.data.dataset import Dataset, density
from repro.data.examples import (
    RUNNING_EXAMPLE_PRUNERS,
    RUNNING_EXAMPLE_RESULT,
    running_example,
    running_example_query,
)
from repro.data.queries import perturbed_query, query_batch, random_query
from repro.data.realistic import (
    CENSUS_INCOME_CARDINALITIES,
    CENSUS_INCOME_ROWS,
    FOREST_COVER_CARDINALITIES,
    FOREST_COVER_ROWS,
    census_income_like,
    forest_cover_like,
)
from repro.data.schema import CATEGORICAL, NUMERIC, Attribute, Schema
from repro.data.synthetic import (
    NORMAL,
    UNIFORM,
    ZIPF,
    mixed_dataset,
    normal_value_sampler,
    synthetic_dataset,
)

__all__ = [
    "Attribute",
    "CATEGORICAL",
    "CENSUS_INCOME_CARDINALITIES",
    "CENSUS_INCOME_ROWS",
    "Dataset",
    "FOREST_COVER_CARDINALITIES",
    "FOREST_COVER_ROWS",
    "NORMAL",
    "NUMERIC",
    "RUNNING_EXAMPLE_PRUNERS",
    "RUNNING_EXAMPLE_RESULT",
    "Schema",
    "UNIFORM",
    "ZIPF",
    "census_income_like",
    "dataset_from_rows",
    "density",
    "query_from_labels",
    "forest_cover_like",
    "mixed_dataset",
    "normal_value_sampler",
    "perturbed_query",
    "query_batch",
    "random_query",
    "random_query",
    "running_example",
    "running_example_query",
    "synthetic_dataset",
]
