"""The in-memory dataset model.

A :class:`Dataset` couples a :class:`~repro.data.schema.Schema`, the
records (plain tuples, in disk order), and the
:class:`~repro.dissim.space.DissimilaritySpace` that gives the per-attribute
dissimilarities. Keeping records as tuples keeps the hot loops of the
algorithms in fast CPython territory and makes the storage codec trivial.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.data.schema import Schema
from repro.dissim.matrix import MatrixDissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.errors import SchemaError

__all__ = ["Dataset", "density"]


def density(num_records: int, cardinalities: Sequence[int]) -> float:
    """Data density as used throughout Section 5: the fraction of the full
    cross-product of attribute domains that is populated, ``n / prod(v_i)``."""
    size = 1
    for c in cardinalities:
        size *= c
    if size == 0:
        raise SchemaError("density undefined for an empty domain")
    return num_records / size


class Dataset:
    """A database ``D`` of multi-attribute objects plus its dissimilarities.

    Parameters
    ----------
    schema:
        Attribute metadata.
    records:
        The objects, one tuple per object, in their on-disk order.
    space:
        Per-attribute dissimilarity functions (must match the schema arity).
    validate:
        When True (default), every record is checked against the schema.
        Generators that construct records by design may pass False.
    name:
        Optional display name used by the experiment harness.
    """

    def __init__(
        self,
        schema: Schema,
        records: Iterable[tuple],
        space: DissimilaritySpace,
        *,
        validate: bool = True,
        name: str = "dataset",
    ) -> None:
        if space.num_attributes != schema.num_attributes:
            raise SchemaError(
                f"space has {space.num_attributes} attributes, "
                f"schema has {schema.num_attributes}"
            )
        for i, (attr, d) in enumerate(zip(schema, space.dissims)):
            if attr.is_categorical:
                if not isinstance(d, MatrixDissimilarity):
                    raise SchemaError(
                        f"attribute {attr.name!r} is categorical but dissimilarity "
                        f"{i} is {type(d).__name__}"
                    )
                if d.cardinality != attr.cardinality:
                    raise SchemaError(
                        f"attribute {attr.name!r}: cardinality {attr.cardinality} "
                        f"!= dissimilarity domain {d.cardinality}"
                    )
            elif isinstance(d, MatrixDissimilarity):
                raise SchemaError(
                    f"attribute {attr.name!r} is numeric but dissimilarity {i} "
                    "is a finite-domain (categorical) matrix"
                )
        self.schema = schema
        self.records = [tuple(r) for r in records]
        self.space = space
        self.name = name
        if validate:
            for r in self.records:
                schema.validate_record(r)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, i: int) -> tuple:
        return self.records[i]

    @property
    def num_attributes(self) -> int:
        return self.schema.num_attributes

    def density(self) -> float:
        """Density ``n / prod(v_i)`` — only defined for all-categorical data."""
        if not self.schema.is_fully_categorical():
            raise SchemaError("density is only defined for fully categorical datasets")
        return density(len(self.records), self.schema.cardinalities())

    def validate_query(self, query: tuple) -> tuple:
        """Check a query object against the schema and return it as a tuple.

        The query need not be present in the database (Section 3)."""
        q = tuple(query)
        self.schema.validate_record(q)
        return q

    def with_records(self, records: Iterable[tuple], *, name: str | None = None) -> "Dataset":
        """A copy of this dataset with different records (e.g. re-ordered by
        the pre-sorting step). Dissimilarities and schema are shared."""
        return Dataset(
            self.schema,
            records,
            self.space,
            validate=False,
            name=name if name is not None else self.name,
        )

    def project(self, attribute_indices: Sequence[int], *, name: str | None = None) -> "Dataset":
        """Project dataset, schema and dissimilarities onto an attribute
        subset (Section 5.6)."""
        schema = self.schema.project(attribute_indices)
        space = self.space.subset(attribute_indices)
        records = [tuple(r[i] for i in attribute_indices) for r in self.records]
        return Dataset(
            schema,
            records,
            space,
            validate=False,
            name=name if name is not None else f"{self.name}[{list(attribute_indices)}]",
        )

    def describe(self) -> str:
        """Short human-readable description used in experiment reports."""
        cards = self.schema.cardinalities()
        extra = ""
        if self.schema.is_fully_categorical() and self.records:
            extra = f", density={self.density():.3g}"
        return f"{self.name}: n={len(self.records)}, m={self.num_attributes}, v={cards}{extra}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dataset({self.describe()})"
