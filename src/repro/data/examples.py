"""The paper's running example (Table 1 and Figure 1).

A six-server database over three categorical attributes — Operating
System, Processor and Database — with expert-provided, non-metric
dissimilarities. Used throughout Section 4 of the paper to walk through
BRS/SRS/TRS, and by this library's Table 1–3 reproduction benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.dissim.matrix import MatrixDissimilarity
from repro.dissim.space import DissimilaritySpace

__all__ = [
    "OS_LABELS",
    "PROCESSOR_LABELS",
    "DB_LABELS",
    "running_example",
    "running_example_query",
    "RUNNING_EXAMPLE_RESULT",
    "RUNNING_EXAMPLE_PRUNERS",
]

OS_LABELS = ("MSW", "RHL", "SL")
PROCESSOR_LABELS = ("AMD", "Intel")
DB_LABELS = ("Informix", "DB2", "Oracle")

# Figure 1 of the paper. d1 is non-metric:
# d1(MSW, SL) = 1.0 > d1(MSW, RHL) + d1(RHL, SL) = 0.8 + 0.1.
_D1_OS = [
    [0.0, 0.8, 1.0],
    [0.8, 0.0, 0.1],
    [1.0, 0.1, 0.0],
]
_D2_PROCESSOR = [
    [0.0, 0.5],
    [0.5, 0.0],
]
_D3_DB = [
    [0.0, 0.5, 0.9],
    [0.5, 0.0, 0.4],
    [0.9, 0.4, 0.0],
]

# Table 1 of the paper, as (OS, Processor, DB) label triples, ids O1..O6.
_OBJECTS = [
    ("MSW", "AMD", "DB2"),  # O1
    ("RHL", "AMD", "Informix"),  # O2
    ("SL", "Intel", "Oracle"),  # O3
    ("MSW", "AMD", "DB2"),  # O4 (duplicate of O1)
    ("RHL", "AMD", "Informix"),  # O5 (duplicate of O2)
    ("MSW", "Intel", "DB2"),  # O6
]

# Ground truth from Table 1 for Q = [MSW, Intel, DB2]: the reverse skyline
# is {O3, O6} (0-based indices 2 and 5), and each excluded object's pruner
# set is listed (0-based).
RUNNING_EXAMPLE_RESULT = frozenset({2, 5})
RUNNING_EXAMPLE_PRUNERS = {
    0: frozenset({3}),
    1: frozenset({0, 3, 4}),
    3: frozenset({0}),
    4: frozenset({0, 1, 3}),
}


def running_example() -> Dataset:
    """Build the Table 1 dataset with the Figure 1 dissimilarities."""
    schema = Schema(
        [
            Attribute("OS", cardinality=3, labels=OS_LABELS),
            Attribute("Processor", cardinality=2, labels=PROCESSOR_LABELS),
            Attribute("DB", cardinality=3, labels=DB_LABELS),
        ]
    )
    space = DissimilaritySpace(
        [
            MatrixDissimilarity(np.array(_D1_OS), labels=OS_LABELS),
            MatrixDissimilarity(np.array(_D2_PROCESSOR), labels=PROCESSOR_LABELS),
            MatrixDissimilarity(np.array(_D3_DB), labels=DB_LABELS),
        ]
    )
    records = [
        (
            OS_LABELS.index(os_name),
            PROCESSOR_LABELS.index(proc),
            DB_LABELS.index(db),
        )
        for os_name, proc, db in _OBJECTS
    ]
    return Dataset(schema, records, space, name="running-example")


def running_example_query() -> tuple[int, int, int]:
    """The paper's query ``Q = [MSW, Intel, DB2]``."""
    return (
        OS_LABELS.index("MSW"),
        PROCESSOR_LABELS.index("Intel"),
        DB_LABELS.index("DB2"),
    )
