"""Query-object sampling.

A reverse-skyline query object follows the dataset schema but need not be
present in the database (Section 3). Experiments draw queries either
uniformly from the attribute domains or by perturbing existing records,
which keeps result-set sizes in the small range the paper reports
(Section 5.7: typically 10–100 results).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import SchemaError

__all__ = ["random_query", "perturbed_query", "query_batch"]


def random_query(dataset: Dataset, rng: np.random.Generator) -> tuple:
    """A query drawn uniformly from the cross-product of attribute domains
    (numeric attributes: uniform over the observed min/max of the data)."""
    values = []
    for i, attr in enumerate(dataset.schema):
        if attr.is_categorical:
            values.append(int(rng.integers(0, attr.cardinality)))
        else:
            column = [r[i] for r in dataset.records]
            if not column:
                raise SchemaError("cannot sample a numeric query from an empty dataset")
            lo, hi = min(column), max(column)
            values.append(float(rng.uniform(lo, hi)))
    return tuple(values)


def perturbed_query(
    dataset: Dataset, rng: np.random.Generator, *, num_changes: int = 1
) -> tuple:
    """A query made by mutating ``num_changes`` attributes of a random
    existing record — queries that sit *near* the data, which is the
    regime where reverse-skyline results are non-trivial."""
    if not dataset.records:
        raise SchemaError("cannot perturb a query from an empty dataset")
    base = list(dataset.records[int(rng.integers(0, len(dataset.records)))])
    m = dataset.num_attributes
    num_changes = max(0, min(num_changes, m))
    for i in rng.choice(m, size=num_changes, replace=False):
        attr = dataset.schema[int(i)]
        if attr.is_categorical:
            base[int(i)] = int(rng.integers(0, attr.cardinality))
        else:
            column = [r[int(i)] for r in dataset.records]
            base[int(i)] = float(rng.uniform(min(column), max(column)))
    return tuple(base)


def query_batch(
    dataset: Dataset, count: int, *, seed: int = 17, perturbed: bool = True
) -> list[tuple]:
    """A reproducible batch of query objects for averaging in experiments."""
    rng = np.random.default_rng(seed)
    if perturbed and dataset.records:
        return [perturbed_query(dataset, rng) for _ in range(count)]
    return [random_query(dataset, rng) for _ in range(count)]
