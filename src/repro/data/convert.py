"""Building datasets from labeled (string-valued) rows.

Real applications hold categorical data as strings ("RHEL", "diesel") and
expert dissimilarities as label-keyed tables, not integer value ids. These
helpers build a properly indexed :class:`~repro.data.dataset.Dataset`
from that shape, deriving each attribute's domain from its dissimilarity
matrix's labels (so values with defined dissimilarities are legal even if
unseen in the data) or, failing that, from the observed values.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Attribute, Schema
from repro.dissim.matrix import MatrixDissimilarity
from repro.dissim.space import DissimilaritySpace
from repro.errors import SchemaError

__all__ = ["dataset_from_rows", "query_from_labels"]


def dataset_from_rows(
    rows: Sequence[Mapping[str, str]],
    dissimilarities: Mapping[str, MatrixDissimilarity] | None = None,
    *,
    attribute_order: Sequence[str] | None = None,
    rng_seed: int = 7,
    name: str = "dataset",
) -> Dataset:
    """Build a dataset from label-valued row mappings.

    Parameters
    ----------
    rows:
        ``{attribute_name: value_label}`` mappings, one per object. Every
        row must provide every attribute.
    dissimilarities:
        Optional per-attribute labeled :class:`MatrixDissimilarity`. For
        attributes without one, the domain is the sorted set of observed
        labels and the dissimilarity is drawn U[0,1] (the paper's
        construction for unlabelled similarity) from ``rng_seed``.
    attribute_order:
        Column order of the resulting schema (defaults to the sorted
        attribute names of the first row).
    """
    if not rows:
        raise SchemaError("need at least one row")
    dissimilarities = dict(dissimilarities or {})
    names = (
        list(attribute_order)
        if attribute_order is not None
        else sorted(rows[0].keys())
    )
    for idx, row in enumerate(rows):
        missing = [n for n in names if n not in row]
        if missing:
            raise SchemaError(f"row {idx} is missing attributes {missing}")

    rng = np.random.default_rng(rng_seed)
    attrs: list[Attribute] = []
    dissims: list[MatrixDissimilarity] = []
    indexers: list[Mapping[str, int]] = []
    for attr_name in names:
        d = dissimilarities.get(attr_name)
        if d is not None:
            if d.labels is None:
                raise SchemaError(
                    f"dissimilarity for {attr_name!r} must carry value labels"
                )
            labels = tuple(d.labels)
        else:
            labels = tuple(sorted({str(row[attr_name]) for row in rows}))
            arr = rng.random((len(labels), len(labels)))
            arr = np.triu(arr, 1)
            arr = arr + arr.T
            d = MatrixDissimilarity(arr, labels=labels)
        attrs.append(Attribute(attr_name, cardinality=len(labels), labels=labels))
        dissims.append(d)
        indexers.append({label: i for i, label in enumerate(labels)})

    records = []
    for idx, row in enumerate(rows):
        values = []
        for attr_name, indexer in zip(names, indexers):
            label = str(row[attr_name])
            try:
                values.append(indexer[label])
            except KeyError:
                raise SchemaError(
                    f"row {idx}: value {label!r} for attribute {attr_name!r} "
                    f"is outside the domain {sorted(indexer)}"
                ) from None
        records.append(tuple(values))
    schema = Schema(attrs)
    return Dataset(schema, records, DissimilaritySpace(dissims), name=name)


def query_from_labels(dataset: Dataset, labels: Mapping[str, str]) -> tuple:
    """Translate a label-valued query mapping into the dataset's value-id
    tuple (and validate it)."""
    values = []
    for i, attr in enumerate(dataset.schema):
        if attr.name not in labels:
            raise SchemaError(f"query is missing attribute {attr.name!r}")
        label = str(labels[attr.name])
        if attr.labels is None:
            raise SchemaError(f"attribute {attr.name!r} has no value labels")
        try:
            values.append(attr.labels.index(label))
        except ValueError:
            raise SchemaError(
                f"query value {label!r} outside attribute {attr.name!r}'s domain"
            ) from None
    return dataset.validate_query(tuple(values))
