"""Algorithm advisor: pick an algorithm + configuration for a dataset.

The paper's conclusion says TRS "is the algorithm of choice for virtually
all possible scenarios"; this module encodes that plus the documented
exceptions, and can optionally *calibrate* — run the candidates on a
sample of the data and pick by measured cost — instead of trusting
heuristics.

Heuristics encoded (with their paper sources):

- numeric attributes present → ``NumericTRS`` (Section 6);
- attribute-subset queries expected → ``T-TRS`` over the tiled layout
  (Section 5.6: the tiled layout is fair to all dimensions);
- dataset small enough to fit the memory budget in one batch → ``TRS``
  still (group reasoning also wins in memory);
- otherwise ``TRS`` with attributes ordered by ascending observed
  cardinality (Section 5.1's ordering heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.registry import make_algorithm
from repro.data.dataset import Dataset
from repro.data.queries import query_batch
from repro.data.stats import DatasetProfile, profile_dataset
from repro.errors import ExperimentError
from repro.sorting.keys import observed_cardinality_order

__all__ = ["Recommendation", "recommend"]


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict."""

    algorithm: str
    attribute_order: tuple[int, ...]
    memory_fraction: float
    rationale: tuple[str, ...]
    profile: DatasetProfile
    calibration: dict[str, float] | None = None

    def build(self, dataset: Dataset, **overrides):
        """Instantiate the recommended algorithm."""
        kwargs = {"memory_fraction": self.memory_fraction}
        if self.algorithm in ("TRS", "T-TRS", "NumericTRS"):
            kwargs["attribute_order"] = list(self.attribute_order)
        kwargs.update(overrides)
        return make_algorithm(self.algorithm, dataset, **kwargs)


def recommend(
    dataset: Dataset,
    *,
    subset_queries_expected: bool = False,
    memory_fraction: float = 0.10,
    calibrate: bool = False,
    calibration_sample: int = 600,
    calibration_queries: int = 2,
    seed: int = 7,
) -> Recommendation:
    """Recommend an algorithm and configuration for ``dataset``.

    With ``calibrate=True``, the advisor also measures BRS/SRS/TRS on a
    record sample and reports their check counts; the cheapest measured
    candidate wins if it disagrees with the heuristic choice.
    """
    if len(dataset) == 0:
        raise ExperimentError("cannot advise on an empty dataset")
    profile = profile_dataset(dataset)
    rationale: list[str] = []
    order = tuple(observed_cardinality_order(dataset))
    rationale.append(
        "attribute order by ascending observed cardinality "
        f"{list(order)} (Section 5.1 heuristic: large groups near the root)"
    )

    if not dataset.schema.is_fully_categorical():
        rationale.append("numeric attributes present -> NumericTRS (Section 6)")
        return Recommendation(
            algorithm="NumericTRS",
            attribute_order=order,
            memory_fraction=memory_fraction,
            rationale=tuple(rationale),
            profile=profile,
        )

    if subset_queries_expected:
        rationale.append(
            "attribute-subset queries expected -> T-TRS over the Z-order "
            "tiled layout (Section 5.6)"
        )
        return Recommendation(
            algorithm="T-TRS",
            attribute_order=order,
            memory_fraction=memory_fraction,
            rationale=tuple(rationale),
            profile=profile,
        )

    algorithm = "TRS"
    rationale.append(
        "TRS: group-level reasoning wins across densities "
        "(paper conclusion: the algorithm of choice for virtually all scenarios)"
    )
    if profile.duplicate_rate > 0.5:
        rationale.append(
            f"high duplicate rate ({profile.duplicate_rate:.0%}): TRS resolves "
            "duplicates in O(1) per object"
        )

    calibration = None
    if calibrate:
        sample_n = min(calibration_sample, len(dataset))
        sample = dataset.with_records(
            dataset.records[:sample_n], name=f"{dataset.name}[sample]"
        )
        queries = query_batch(sample, calibration_queries, seed=seed)
        calibration = {}
        for name in ("BRS", "SRS", "TRS"):
            algo = make_algorithm(
                name, sample, memory_fraction=memory_fraction, page_bytes=256
            )
            checks = sum(algo.run(q).stats.checks for q in queries)
            calibration[name] = checks / len(queries)
        cheapest = min(calibration, key=calibration.get)
        if cheapest != algorithm:
            rationale.append(
                f"calibration override: {cheapest} measured cheapest "
                f"({calibration[cheapest]:,.0f} checks/query)"
            )
            algorithm = cheapest
        else:
            rationale.append(
                f"calibration confirms {algorithm} "
                f"({calibration[algorithm]:,.0f} checks/query)"
            )

    return Recommendation(
        algorithm=algorithm,
        attribute_order=order,
        memory_fraction=memory_fraction,
        rationale=tuple(rationale),
        profile=profile,
        calibration=calibration,
    )
