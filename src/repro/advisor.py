"""Algorithm advisor: pick an algorithm + configuration for a dataset.

The paper's conclusion says TRS "is the algorithm of choice for virtually
all possible scenarios"; this module encodes that plus the documented
exceptions, and can optionally *calibrate* — run the candidates on a
sample of the data and pick by measured cost — instead of trusting
heuristics.

Heuristics encoded (with their paper sources):

- numeric attributes present → ``NumericTRS`` (Section 6);
- attribute-subset queries expected → ``T-TRS`` over the tiled layout
  (Section 5.6: the tiled layout is fair to all dimensions);
- dataset small enough to fit the memory budget in one batch → ``TRS``
  still (group reasoning also wins in memory);
- otherwise ``TRS`` with attributes ordered by ascending observed
  cardinality (Section 5.1's ordering heuristic);
- large fully-categorical datasets with enough distinct values and a
  non-degenerate dissimilarity spread → the ``ITRS`` candidate index
  (:mod:`repro.index`), whose exact mode is always sound; when the
  measure is additionally *near-metric* (sampled triangle-defect rate
  low) and the dataset very large, a ``recall_target`` is suggested so
  the calibrated band rule can prune further;
- an expected ``write_rate`` adds a maintenance verdict: delta-tree
  maintenance (:mod:`repro.maint`) for read-dominated categorical
  workloads, rebuild-per-batch when writes dominate or the dataset is
  small enough that rebuilds are noise (BENCH_maint.json records the
  measured crossover).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.registry import make_algorithm
from repro.data.dataset import Dataset
from repro.data.queries import query_batch
from repro.data.stats import DatasetProfile, profile_dataset
from repro.errors import ExperimentError
from repro.sorting.keys import observed_cardinality_order

__all__ = [
    "IndexSignals",
    "Recommendation",
    "brs_shape",
    "index_signals",
    "recommend",
]

#: Below this the O(n) scan is cheap enough that building a tree is noise.
_INDEX_MIN_RECORDS = 2000
#: The value rule needs distinct values to eliminate on (mean observed
#: distinct per attribute).
_INDEX_MIN_DISTINCT = 4.0
#: Nearly-constant dissimilarities give thresholds nothing to cut
#: (coefficient of variation of the sampled aggregate dissimilarity).
_INDEX_MIN_SPREAD = 0.10
#: A recall target is only suggested when missing the occasional pruner
#: is a price worth paying — very large data, near-metric measure.
_APPROX_MIN_RECORDS = 10_000
_APPROX_MAX_DEFECT_RATE = 0.20
_APPROX_DEFAULT_TARGET = 0.95
#: BRS-family recommendations are only honoured on *dense* shapes:
#: records outnumber the distinct value cells (density >= 1), so block
#: pruning eliminates most of phase 1 and the scan family can compete
#: with group reasoning. BENCH_core.json's dense [4,4,4,4] cell records
#: the measurement behind the threshold.
_BRS_MIN_DENSITY = 1.0
#: Below this a from-scratch rebuild is cheap enough that delta
#: bookkeeping (tiers, tombstones, wire shipping) is pure overhead.
_MAINT_MIN_RECORDS = 500
#: Above this write fraction the base churns faster than compactions
#: amortise; rebuilding per batch keeps the read path static instead.
_MAINT_MAX_WRITE_RATE = 0.5


def brs_shape(profile: DatasetProfile) -> bool:
    """Whether the dataset is the dense low-cardinality shape on which
    the BRS family is allowed to be recommended."""
    return profile.density is not None and profile.density >= _BRS_MIN_DENSITY


@dataclass(frozen=True)
class IndexSignals:
    """Sampled statistics the index recommendation is based on."""

    #: Fraction of sampled triples violating the VP lower bound
    #: ``D(x→y) >= D(x→v) − D(v→y)`` — 0 for a true metric.
    defect_rate: float
    #: Coefficient of variation of the sampled aggregate dissimilarity.
    spread: float
    #: Mean observed distinct values per attribute.
    mean_distinct: float


def index_signals(
    dataset: Dataset, *, samples: int = 512, seed: int = 7
) -> IndexSignals:
    """Sample the dissimilarity statistics behind the index rules.

    Only meaningful for fully-categorical datasets (the candidate index
    requires lookup matrices); raises otherwise.
    """
    if len(dataset) < 2:
        return IndexSignals(defect_rate=0.0, spread=0.0, mean_distinct=0.0)
    mats = [np.asarray(t, dtype=np.float64) for t in dataset.space.tables()]
    values = np.asarray([tuple(r) for r in dataset.records], dtype=np.int64)
    n, m = values.shape
    rng = np.random.default_rng(seed)
    xs = rng.integers(0, n, size=samples)
    vs = rng.integers(0, n, size=samples)
    ys = rng.integers(0, n, size=samples)
    d_xv = np.zeros(samples)
    d_vy = np.zeros(samples)
    d_xy = np.zeros(samples)
    for i in range(m):
        d_xv += mats[i][values[xs, i], values[vs, i]]
        d_vy += mats[i][values[vs, i], values[ys, i]]
        d_xy += mats[i][values[xs, i], values[ys, i]]
    defect_rate = float(np.mean(d_xv - d_vy - d_xy > 1e-12))
    mean = float(d_xy.mean())
    spread = float(d_xy.std() / mean) if mean > 0 else 0.0
    distinct = [len(np.unique(values[:, i])) for i in range(m)]
    return IndexSignals(
        defect_rate=defect_rate,
        spread=spread,
        mean_distinct=float(np.mean(distinct)),
    )


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict."""

    algorithm: str
    attribute_order: tuple[int, ...]
    memory_fraction: float
    rationale: tuple[str, ...]
    profile: DatasetProfile
    calibration: dict[str, float] | None = None
    #: Route queries through the ``ITRS`` candidate index.
    index: bool = False
    #: Approximate-mode pruning-recall target (``None`` = exact mode).
    recall_target: float | None = None
    #: The sampled statistics behind ``index``/``recall_target`` (only
    #: populated when the index rules were evaluated).
    signals: IndexSignals | None = None
    #: Update strategy when a ``write_rate`` was supplied: ``"static"``
    #: (no writes), ``"maintained"`` (delta trees via
    #: :class:`repro.maint.MaintainedEngine`) or ``"rebuild"``
    #: (rebuild per batch). ``None`` when no write rate was given.
    maintenance: str | None = None

    def build(self, dataset: Dataset, **overrides):
        """Instantiate the recommended algorithm."""
        kwargs = {"memory_fraction": self.memory_fraction}
        if self.algorithm in ("TRS", "T-TRS", "NumericTRS", "ITRS"):
            kwargs["attribute_order"] = list(self.attribute_order)
        if self.algorithm == "ITRS" and self.recall_target is not None:
            kwargs["recall_target"] = self.recall_target
        kwargs.update(overrides)
        return make_algorithm(self.algorithm, dataset, **kwargs)


def recommend(
    dataset: Dataset,
    *,
    subset_queries_expected: bool = False,
    memory_fraction: float = 0.10,
    calibrate: bool = False,
    calibration_sample: int = 600,
    calibration_queries: int = 2,
    seed: int = 7,
    write_rate: float | None = None,
) -> Recommendation:
    """Recommend an algorithm and configuration for ``dataset``.

    With ``calibrate=True``, the advisor also measures BRS/SRS/TRS on a
    record sample and reports their check counts; the cheapest measured
    candidate wins if it disagrees with the heuristic choice.

    ``write_rate`` is the expected fraction of operations that are
    updates (inserts + deletes); supplying it adds a ``maintenance``
    verdict to the recommendation (module docstring).
    """
    if len(dataset) == 0:
        raise ExperimentError("cannot advise on an empty dataset")
    profile = profile_dataset(dataset)
    rationale: list[str] = []
    order = tuple(observed_cardinality_order(dataset))
    rationale.append(
        "attribute order by ascending observed cardinality "
        f"{list(order)} (Section 5.1 heuristic: large groups near the root)"
    )

    maintenance = None
    if write_rate is not None:
        if (
            not isinstance(write_rate, (int, float))
            or isinstance(write_rate, bool)
            or not 0.0 <= write_rate <= 1.0
        ):
            raise ExperimentError(
                f"write_rate must be a number in [0, 1], got {write_rate!r}"
            )
        write_rate = float(write_rate)
        if write_rate == 0.0:
            maintenance = "static"
            rationale.append("write_rate=0: no updates expected -> static engine")
        elif not dataset.schema.is_fully_categorical():
            maintenance = "rebuild"
            rationale.append(
                "updates on a numeric schema -> rebuild per batch "
                "(delta AL-Trees need categorical domains)"
            )
        elif len(dataset) < _MAINT_MIN_RECORDS:
            maintenance = "rebuild"
            rationale.append(
                f"n={len(dataset)} < {_MAINT_MIN_RECORDS}: from-scratch "
                "rebuilds are cheaper than delta bookkeeping"
            )
        elif write_rate > _MAINT_MAX_WRITE_RATE:
            maintenance = "rebuild"
            rationale.append(
                f"write-dominated workload ({write_rate:.0%} writes > "
                f"{_MAINT_MAX_WRITE_RATE:.0%}): the base churns faster than "
                "compactions amortise -> rebuild per batch"
            )
        else:
            maintenance = "maintained"
            rationale.append(
                f"read-dominated workload ({write_rate:.0%} writes) on "
                f"n={len(dataset):,} -> delta-tree maintenance "
                "(repro.maint.MaintainedEngine): caches and plans stay warm "
                "across batches (BENCH_maint measures >= 3x over "
                "rebuild-per-batch at 10% writes)"
            )

    if not dataset.schema.is_fully_categorical():
        rationale.append("numeric attributes present -> NumericTRS (Section 6)")
        return Recommendation(
            algorithm="NumericTRS",
            attribute_order=order,
            memory_fraction=memory_fraction,
            rationale=tuple(rationale),
            profile=profile,
            maintenance=maintenance,
        )

    if subset_queries_expected:
        rationale.append(
            "attribute-subset queries expected -> T-TRS over the Z-order "
            "tiled layout (Section 5.6)"
        )
        return Recommendation(
            algorithm="T-TRS",
            attribute_order=order,
            memory_fraction=memory_fraction,
            rationale=tuple(rationale),
            profile=profile,
            maintenance=maintenance,
        )

    algorithm = "TRS"
    rationale.append(
        "TRS: group-level reasoning wins across densities "
        "(paper conclusion: the algorithm of choice for virtually all scenarios)"
    )
    if profile.duplicate_rate > 0.5:
        rationale.append(
            f"high duplicate rate ({profile.duplicate_rate:.0%}): TRS resolves "
            "duplicates in O(1) per object"
        )

    calibration = None
    if calibrate:
        sample_n = min(calibration_sample, len(dataset))
        sample = dataset.with_records(
            dataset.records[:sample_n], name=f"{dataset.name}[sample]"
        )
        queries = query_batch(sample, calibration_queries, seed=seed)
        calibration = {}
        for name in ("BRS", "SRS", "TRS"):
            algo = make_algorithm(
                name, sample, memory_fraction=memory_fraction, page_bytes=256
            )
            checks = sum(algo.run(q).stats.checks for q in queries)
            calibration[name] = checks / len(queries)
        cheapest = min(calibration, key=calibration.get)
        if cheapest != algorithm:
            if cheapest == "BRS" and not brs_shape(profile):
                rationale.append(
                    f"calibration favours BRS ({calibration['BRS']:,.0f} "
                    "checks/query) but the dataset is not dense "
                    f"low-cardinality (density {profile.density}); the BRS "
                    "family is only recommended when records outnumber "
                    f"value cells (density >= {_BRS_MIN_DENSITY:g}) — "
                    "keeping TRS"
                )
            else:
                rationale.append(
                    f"calibration override: {cheapest} measured cheapest "
                    f"({calibration[cheapest]:,.0f} checks/query)"
                )
                algorithm = cheapest
        else:
            rationale.append(
                f"calibration confirms {algorithm} "
                f"({calibration[algorithm]:,.0f} checks/query)"
            )

    # Index rules: only once the scan family settled on TRS (the indexed
    # family verifies candidates with the same pairwise rule).
    index = False
    recall_target = None
    signals = None
    if algorithm == "TRS" and len(dataset) >= _INDEX_MIN_RECORDS:
        signals = index_signals(dataset, seed=seed)
        if (
            signals.mean_distinct >= _INDEX_MIN_DISTINCT
            and signals.spread >= _INDEX_MIN_SPREAD
        ):
            index = True
            algorithm = "ITRS"
            rationale.append(
                f"n={len(dataset):,} with ~{signals.mean_distinct:.0f} distinct "
                f"values/attribute and dissimilarity spread {signals.spread:.2f}"
                " -> ITRS candidate index (exact mode is always sound)"
            )
            if (
                len(dataset) >= _APPROX_MIN_RECORDS
                and signals.defect_rate <= _APPROX_MAX_DEFECT_RATE
            ):
                recall_target = _APPROX_DEFAULT_TARGET
                rationale.append(
                    f"near-metric measure (sampled triangle-defect rate "
                    f"{signals.defect_rate:.0%}) on a very large dataset -> "
                    f"recall_target={recall_target} (band rule prunes "
                    "further; every result reports its measured recall)"
                )
        else:
            rationale.append(
                "candidate index not indicated: needs >= "
                f"{_INDEX_MIN_DISTINCT:.0f} distinct values/attribute "
                f"(have {signals.mean_distinct:.1f}) and dissimilarity "
                f"spread >= {_INDEX_MIN_SPREAD} (have {signals.spread:.2f})"
            )

    return Recommendation(
        algorithm=algorithm,
        attribute_order=order,
        memory_fraction=memory_fraction,
        rationale=tuple(rationale),
        profile=profile,
        calibration=calibration,
        index=index,
        recall_target=recall_target,
        signals=signals,
        maintenance=maintenance,
    )
