"""repro.index — non-metric candidate-generation index.

A VP-tree-shaped pruning tree whose per-node decision rules are
calibrated against the dataset's actual dissimilarity distribution,
yielding for each (object, query) pair a superset of its possible
pruners.  :class:`repro.core.indexed.IndexedTRS` drives it as the
``ITRS`` algorithm family; see :doc:`docs/indexing` for the exact /
approximate contract.
"""

from repro.index.candidates import (
    scalar_candidates,
    scalar_has_pruner,
    vector_candidates,
    vector_has_pruner,
)
from repro.index.tree import (
    IndexParams,
    PruningIndex,
    build_index,
    export_index,
    import_index,
)

__all__ = [
    "IndexParams",
    "PruningIndex",
    "build_index",
    "export_index",
    "import_index",
    "scalar_candidates",
    "scalar_has_pruner",
    "vector_candidates",
    "vector_has_pruner",
]
