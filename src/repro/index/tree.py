"""The non-metric pruning tree (paper Section 3 setting; ROADMAP item).

The paper argues no *metric* index applies to arbitrary non-metric
dissimilarities and therefore every reverse-skyline query pays an O(n)
scan.  NMSLIB and Boytsov & Nyberg's low-dimensional non-metric k-NN
study show the weaker claim is the useful one: a VP-tree *shape* needs
no metric axioms — only a decision rule calibrated against the measure
actually in use.  This module builds exactly that:

- **Vantage points** are records drawn deterministically from a seeded
  RNG (same seed + same dataset → bit-identical tree).
- **Split radii** are quantiles of the *observed* aggregate
  dissimilarity ``D(v→y) = Σ_i d_i(v_i, y_i)`` from the node's vantage
  to its members — calibrated against the data's actual dissimilarity
  distribution, never against metric assumptions.
- Every node stores, per attribute, the **set of attribute values**
  present beneath it.  This supports a *sound* group-elimination rule
  (see :mod:`repro.index.candidates`): if some attribute has no stored
  value within the pruner threshold, no descendant can prune — the
  AL-Tree's level-wise elimination generalised to arbitrary groupings.
- A **triangle-defect table**: sampled defects
  ``δ = D(x→v) − D(v→y) − D(x→y)`` quantify how badly the measure
  violates the triangle inequality.  The approximate mode turns a
  chosen quantile of this table into a slack term for a VP-style band
  bound; the quantile *is* the ``recall_target`` knob, and quantiles
  are monotone — so candidate sets are nested in the target.
- A **leaf-score calibration table**: per-leaf, per-attribute *entry
  counts* support an expected-pruner score (see
  :mod:`repro.index.candidates`) that targets the value rule's one
  blind spot — leaves whose attributes are each satisfied by
  *different* entries.  Self-queries drawn from the data calibrate the
  score each truly-prunable object needs at its best pruner leaf; the
  ``recall_target`` quantile of that table is the approximate mode's
  score cutoff, monotone in the target like the defect slacks.

The built tree is flattened to plain numpy arrays (BFS order, children
contiguous, parent id < child id) so it can live in the process-wide
plan cache and be published zero-copy over shared memory to pool
workers, exactly like the phase-1 plans of :mod:`repro.core.vector_trs`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import AlgorithmError

__all__ = [
    "IndexParams",
    "PruningIndex",
    "build_index",
    "export_index",
    "import_index",
]

#: Offsets the calibration RNG stream away from the tree-build stream so
#: the two draws never alias (golden-ratio constant, arbitrary but fixed).
_CALIBRATION_STREAM = 0x9E3779B1


@dataclass(frozen=True)
class IndexParams:
    """Build inputs the index artifact depends on (beyond the dataset)."""

    seed: int = 0
    #: Stop splitting below this member count; constant leaf size makes
    #: tree depth — and with it the group-elimination power — grow with n.
    leaf_size: int = 32
    #: Children per split: quantile bands of the vantage dissimilarity.
    fanout: int = 4
    #: Triples sampled for the triangle-defect calibration table.
    calibration_samples: int = 512

    def key(self) -> tuple:
        """Flat tuple for :class:`~repro.kernels.plancache.PlanKey`."""
        return (self.seed, self.leaf_size, self.fanout, self.calibration_samples)


class _BuildNode:
    __slots__ = ("ids", "band_vantage", "band_hi", "band_lo", "children", "index")

    def __init__(
        self, ids, band_vantage: int, band_hi: float, band_lo: float
    ) -> None:
        self.ids = ids
        self.band_vantage = band_vantage
        self.band_hi = band_hi
        self.band_lo = band_lo
        self.children: list[_BuildNode] = []
        self.index = -1


class PruningIndex:
    """Flattened pruning tree over one dataset.

    Array layout (all nodes in BFS order; root is node 0; every node's
    children occupy a contiguous id range and a parent's id is always
    smaller than its children's — traversals and rule propagation are a
    single ascending pass):

    ``node_parent``        parent node id (-1 for the root)
    ``child_start/count``  the children's node-id range (count 0 = leaf)
    ``leaf_start/count``   the leaf's slice of ``entry_ids`` (internal: -1/0)
    ``entry_ids``          record ids, concatenated leaf by leaf
    ``band_vantage``       record id of the *parent's* vantage (-1 at root)
    ``band_hi``            max ``D(vantage→y)`` over the node's members
    ``band_lo``            min ``D(vantage→y)`` over the node's members
    ``value_masks``        (num_nodes, Σ cardinalities) presence booleans
    ``value_counts``       (num_nodes, Σ cardinalities) entry counts —
                           how many subtree entries hold each value
                           (the masks are exactly ``value_counts > 0``)
    ``defects``            sorted samples of ``D(x→v) − D(v→y) − D(x→y)``
                           (calibrates the lower-side cut)
    ``defects_out``        sorted samples of ``D(v→y) − D(v→x) − D(x→y)``
                           (calibrates the upper-side cut; asymmetric
                           measures make the two orientations distinct)
    ``cal_scores``         sorted per-object calibration scores: for each
                           sampled truly-prunable object under a
                           self-query, the best leaf score among the
                           leaves holding its pruners (calibrates the
                           approximate leaf-score cutoff)

    ``values`` is the (n, m) record-value matrix in original dataset id
    order; it is *not* exported (shared-memory workers reuse the dataset
    arrays already published by :mod:`repro.exec.shm`).
    """

    __slots__ = (
        "params",
        "cardinalities",
        "attr_offsets",
        "values",
        "node_parent",
        "child_start",
        "child_count",
        "leaf_start",
        "leaf_count",
        "entry_ids",
        "band_vantage",
        "band_hi",
        "band_lo",
        "value_masks",
        "value_counts",
        "defects",
        "defects_out",
        "cal_scores",
        "_value_lists",
    )

    def __init__(
        self,
        *,
        params: IndexParams,
        cardinalities: tuple[int, ...],
        attr_offsets: np.ndarray,
        values: np.ndarray,
        node_parent: np.ndarray,
        child_start: np.ndarray,
        child_count: np.ndarray,
        leaf_start: np.ndarray,
        leaf_count: np.ndarray,
        entry_ids: np.ndarray,
        band_vantage: np.ndarray,
        band_hi: np.ndarray,
        band_lo: np.ndarray,
        value_masks: np.ndarray,
        value_counts: np.ndarray,
        defects: np.ndarray,
        defects_out: np.ndarray,
        cal_scores: np.ndarray,
    ) -> None:
        self.params = params
        self.cardinalities = cardinalities
        self.attr_offsets = attr_offsets
        self.values = values
        self.node_parent = node_parent
        self.child_start = child_start
        self.child_count = child_count
        self.leaf_start = leaf_start
        self.leaf_count = leaf_count
        self.entry_ids = entry_ids
        self.band_vantage = band_vantage
        self.band_hi = band_hi
        self.band_lo = band_lo
        self.value_masks = value_masks
        self.value_counts = value_counts
        self.defects = defects
        self.defects_out = defects_out
        self.cal_scores = cal_scores
        self._value_lists: list | None = None

    # -- shape ---------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.child_start)

    @property
    def num_records(self) -> int:
        return len(self.values)

    @property
    def num_attributes(self) -> int:
        return len(self.cardinalities)

    def memory_bytes(self) -> int:
        total = 0
        for name in (
            "values",
            "node_parent",
            "child_start",
            "child_count",
            "leaf_start",
            "leaf_count",
            "entry_ids",
            "band_vantage",
            "band_hi",
            "band_lo",
            "value_masks",
            "value_counts",
            "defects",
            "defects_out",
            "cal_scores",
        ):
            total += int(getattr(self, name).nbytes)
        return total

    # -- calibration ---------------------------------------------------------
    def slack(self, recall_target: float) -> float:
        """The inbound triangle-defect slack for a recall target in [0, 1].

        Returns the ``recall_target`` quantile of the sampled defect
        distribution ``D(x→v) − D(v→y) − D(x→y)`` — the slack of the
        lower-side cut (discard bands wholly *below* ``D(x→v) − Σt``).
        Quantiles are monotone non-decreasing in the level, so a higher
        target always yields a looser band bound — fewer (never more)
        subtrees discarded, hence nested candidate sets (the property
        :mod:`tests.test_index` pins).
        """
        return self._quantile(self.defects, recall_target)

    def slack_out(self, recall_target: float) -> float:
        """The outbound-defect slack ``D(v→y) − D(v→x) − D(x→y)`` for the
        upper-side cut (discard bands wholly *above* ``D(v→x) + Σt``).
        Calibrated separately because asymmetric measures make the two
        triangle orientations genuinely different distributions."""
        return self._quantile(self.defects_out, recall_target)

    def score_cutoff(self, recall_target: float) -> float:
        """The leaf-score cutoff for a recall target in [0, 1].

        Returns the ``1 − recall_target`` quantile of the calibration
        scores — the leaf score below which only the worst
        ``1 − recall_target`` share of sampled truly-prunable objects
        found their best pruner leaf.  Discarding leaves scoring below
        the cutoff therefore loses roughly that share of prunings.
        Non-increasing in the target (a higher target cuts fewer
        leaves), which together with the monotone defect slacks keeps
        candidate sets nested in ``recall_target``.  When calibration
        found no prunable objects the table is the sentinel ``[-1.0]``
        and no leaf is ever cut (scores are non-negative).
        """
        if not 0.0 <= recall_target <= 1.0:
            raise AlgorithmError(
                f"recall_target must be in [0, 1], got {recall_target!r}"
            )
        return self._quantile(self.cal_scores, 1.0 - recall_target)

    @staticmethod
    def _quantile(samples: np.ndarray, recall_target: float) -> float:
        if not 0.0 <= recall_target <= 1.0:
            raise AlgorithmError(
                f"recall_target must be in [0, 1], got {recall_target!r}"
            )
        k = len(samples)
        idx = min(k - 1, int(round(recall_target * (k - 1))))
        return float(samples[idx])

    # -- scalar-path helpers --------------------------------------------------
    def value_lists(self) -> list:
        """Per-node, per-attribute tuples of present attribute values —
        the scalar traversal's view of ``value_masks`` (built lazily,
        once per index instance)."""
        if self._value_lists is None:
            off = self.attr_offsets
            lists = []
            for node in range(self.num_nodes):
                row = self.value_masks[node]
                lists.append(
                    tuple(
                        tuple(int(u) for u in np.nonzero(row[off[i] : off[i + 1]])[0])
                        for i in range(self.num_attributes)
                    )
                )
            self._value_lists = lists
        return self._value_lists


def _leaf_score(
    counts_row: np.ndarray,
    attr_offsets: np.ndarray,
    mats: list[np.ndarray],
    x_values: np.ndarray,
    thresholds: np.ndarray,
    lc: float,
) -> float:
    """The expected-pruner **bottleneck score** of one leaf for one
    object: the leaf's entry count times the product of its two
    smallest per-attribute within-threshold entry fractions.  The full
    independence product over-penalises vantage-ring leaves (members
    share a total dissimilarity, so their per-attribute deviations are
    anti-correlated); the two most selective attributes carry nearly
    all the signal.  Must stay arithmetically identical to the query
    paths in :mod:`repro.index.candidates` — calibration and traversal
    have to score a leaf the same way."""
    m = len(thresholds)
    fracs = []
    for i in range(m):
        row = counts_row[attr_offsets[i] : attr_offsets[i + 1]]
        allowed = mats[i][x_values[i]] <= thresholds[i]
        fracs.append(float((row * allowed).sum()) / lc)
    fracs.sort()
    score = lc * fracs[0]
    if m > 1:
        score = score * fracs[1]
    return score


def _dissim_matrices(dataset: Dataset) -> list[np.ndarray]:
    tables = dataset.space.tables()
    mats = []
    for i, t in enumerate(tables):
        if t is None:
            raise AlgorithmError(
                f"repro.index: attribute {i} has no finite lookup table; the "
                "candidate index requires a fully categorical dissimilarity space"
            )
        mats.append(np.asarray(t, dtype=np.float64))
    return mats


def build_index(dataset: Dataset, params: IndexParams | None = None) -> PruningIndex:
    """Build the pruning tree. Deterministic: a pure function of the
    dataset contents and ``params`` (the vantage draws come from a
    seeded generator consumed in a fixed traversal order)."""
    if params is None:
        params = IndexParams()
    if params.leaf_size < 1 or params.fanout < 2:
        raise AlgorithmError(
            f"repro.index: need leaf_size >= 1 and fanout >= 2, got "
            f"leaf_size={params.leaf_size} fanout={params.fanout}"
        )
    mats = _dissim_matrices(dataset)
    cards = tuple(len(t) for t in mats)
    m = dataset.num_attributes
    n = len(dataset)
    if n:
        values = np.asarray([tuple(r) for r in dataset.records], dtype=np.int64)
        values = values.reshape(n, m)
    else:
        values = np.zeros((0, m), dtype=np.int64)

    def vantage_dissim(vantage: int, ids: np.ndarray) -> np.ndarray:
        """``D(v→y) = Σ_i d_i(v_i, y_i)`` for every member ``y``."""
        dist = np.zeros(len(ids), dtype=np.float64)
        for i in range(m):
            dist += mats[i][values[vantage, i], values[ids, i]]
        return dist

    rng = np.random.default_rng(params.seed)
    root = _BuildNode(np.arange(n, dtype=np.int64), -1, 0.0, 0.0)
    stack = [root]
    while stack:
        node = stack.pop()
        if len(node.ids) <= params.leaf_size:
            continue
        vantage = int(node.ids[int(rng.integers(len(node.ids)))])
        dist = vantage_dissim(vantage, node.ids)
        # Data-calibrated split radii: quantile bands of the observed
        # vantage dissimilarities (boundary values stay in the lower band).
        edges = np.quantile(
            dist, [(b + 1) / params.fanout for b in range(params.fanout - 1)]
        )
        assign = np.searchsorted(edges, dist, side="left")
        kids = []
        for b in range(params.fanout):
            sel = assign == b
            if not sel.any():
                continue
            kids.append(
                _BuildNode(
                    node.ids[sel],
                    vantage,
                    float(dist[sel].max()),
                    float(dist[sel].min()),
                )
            )
        if len(kids) < 2:
            continue  # all members equidistant from the vantage: keep as leaf
        node.children = kids
        stack.extend(kids)

    # BFS flatten: children enqueued together get contiguous ids.
    order: list[_BuildNode] = []
    queue = deque([root])
    while queue:
        node = queue.popleft()
        node.index = len(order)
        order.append(node)
        queue.extend(node.children)

    num_nodes = len(order)
    node_parent = np.full(num_nodes, -1, dtype=np.int32)
    child_start = np.zeros(num_nodes, dtype=np.int32)
    child_count = np.zeros(num_nodes, dtype=np.int32)
    leaf_start = np.full(num_nodes, -1, dtype=np.int32)
    leaf_count = np.zeros(num_nodes, dtype=np.int32)
    band_vantage = np.full(num_nodes, -1, dtype=np.int32)
    band_hi = np.zeros(num_nodes, dtype=np.float64)
    band_lo = np.zeros(num_nodes, dtype=np.float64)
    total_card = int(sum(cards))
    attr_offsets = np.zeros(m + 1, dtype=np.int64)
    attr_offsets[1:] = np.cumsum(cards)
    value_masks = np.zeros((num_nodes, total_card), dtype=bool)
    value_counts = np.zeros((num_nodes, total_card), dtype=np.uint32)
    entry_chunks: list[np.ndarray] = []
    next_entry = 0
    for node in order:
        j = node.index
        band_vantage[j] = node.band_vantage
        band_hi[j] = node.band_hi
        band_lo[j] = node.band_lo
        if node.children:
            child_start[j] = node.children[0].index
            child_count[j] = len(node.children)
            for child in node.children:
                node_parent[child.index] = j
        else:
            leaf_start[j] = next_entry
            leaf_count[j] = len(node.ids)
            next_entry += len(node.ids)
            entry_chunks.append(node.ids)
            for i in range(m):
                cols = attr_offsets[i] + values[node.ids, i]
                value_masks[j, cols] = True
                np.add.at(value_counts[j], cols, 1)
    # Internal masks/counts aggregate their children's (reverse BFS pass).
    for node in reversed(order):
        if node.children:
            j = node.index
            lo, hi = child_start[j], child_start[j] + child_count[j]
            value_masks[j] = value_masks[lo:hi].any(axis=0)
            value_counts[j] = value_counts[lo:hi].sum(axis=0)
    entry_ids = (
        np.concatenate(entry_chunks).astype(np.int32)
        if entry_chunks
        else np.zeros(0, dtype=np.int32)
    )

    # Triangle-defect calibration, both orientations: how badly does the
    # measure violate the VP bounds D(x→y) >= D(x→v) − D(v→y) (lower-side
    # cut) and D(x→y) >= D(v→y) − D(v→x) (upper-side cut)?
    crng = np.random.default_rng(params.seed + _CALIBRATION_STREAM)
    k = params.calibration_samples
    if n >= 2 and k > 0:
        xs = crng.integers(0, n, size=k)
        vs = crng.integers(0, n, size=k)
        ys = crng.integers(0, n, size=k)
        d_xv = np.zeros(k)
        d_vx = np.zeros(k)
        d_vy = np.zeros(k)
        d_xy = np.zeros(k)
        for i in range(m):
            d_xv += mats[i][values[xs, i], values[vs, i]]
            d_vx += mats[i][values[vs, i], values[xs, i]]
            d_vy += mats[i][values[vs, i], values[ys, i]]
            d_xy += mats[i][values[xs, i], values[ys, i]]
        defects = np.sort(d_xv - d_vy - d_xy)
        defects_out = np.sort(d_vy - d_vx - d_xy)
    else:
        defects = np.zeros(1, dtype=np.float64)
        defects_out = np.zeros(1, dtype=np.float64)

    # Leaf-score calibration: under self-queries (queries drawn from the
    # data itself — the standard "queries look like data" assumption,
    # which is also how defect sampling above works), find truly
    # prunable objects and record the leaf score at their best pruner
    # leaf.  The approximate cutoff is a low quantile of these scores:
    # objects whose pruners sit in leaves scoring above it keep at least
    # one pruner leaf, so the quantile level bounds the pruning recall
    # given up.
    scores: list[float] = []
    if n >= 2 and k > 0:
        leaf_of = np.empty(n, dtype=np.int64)
        for j in range(num_nodes):
            if child_count[j] == 0 and leaf_count[j] > 0:
                ls = leaf_start[j]
                leaf_of[entry_ids[ls : ls + leaf_count[j]]] = j
        pool = (
            np.arange(n, dtype=np.int64)
            if n <= 1024
            else np.sort(crng.choice(n, size=1024, replace=False))
        )
        pool_vals = values[pool]
        cal_x = crng.integers(0, n, size=k)
        cal_q = crng.integers(0, n, size=k)
        for x_id, q_id in zip(cal_x, cal_q):
            xv = values[x_id]
            qv = values[q_id]
            thresholds = np.array(
                [mats[i][xv[i], qv[i]] for i in range(m)], dtype=np.float64
            )
            within = np.ones(len(pool), dtype=bool)
            closer = np.zeros(len(pool), dtype=bool)
            for i in range(m):
                d = mats[i][xv[i], pool_vals[:, i]]
                within &= d <= thresholds[i]
                closer |= d < thresholds[i]
            pruners = pool[within & closer & (pool != x_id)]
            if len(pruners) == 0:
                continue
            best = -1.0
            for j in np.unique(leaf_of[pruners]):
                score = _leaf_score(
                    value_counts[j], attr_offsets, mats, xv, thresholds,
                    float(leaf_count[j]),
                )
                if score > best:
                    best = score
            scores.append(best)
    cal_scores = (
        np.sort(np.asarray(scores, dtype=np.float64))
        if scores
        else np.full(1, -1.0, dtype=np.float64)
    )

    return PruningIndex(
        params=params,
        cardinalities=cards,
        attr_offsets=attr_offsets,
        values=values,
        node_parent=node_parent,
        child_start=child_start,
        child_count=child_count,
        leaf_start=leaf_start,
        leaf_count=leaf_count,
        entry_ids=entry_ids,
        band_vantage=band_vantage,
        band_hi=band_hi,
        band_lo=band_lo,
        value_masks=value_masks,
        value_counts=value_counts,
        defects=defects,
        defects_out=defects_out,
        cal_scores=cal_scores,
    )


# -- zero-copy transport (plan cache / shared memory) ------------------------

def export_index(index: PruningIndex) -> tuple[dict, dict[str, np.ndarray]]:
    """``(meta, arrays)`` in the shape :func:`repro.exec.shm.publish_arrays`
    consumes. ``values`` is intentionally omitted — workers already hold
    the dataset arrays (shm ``data.values`` or the dataset itself)."""
    meta = {
        "params": list(index.params.key()),
        "cardinalities": list(index.cardinalities),
        "num_records": index.num_records,
    }
    arrays = {
        "node_parent": index.node_parent,
        "child_start": index.child_start,
        "child_count": index.child_count,
        "leaf_start": index.leaf_start,
        "leaf_count": index.leaf_count,
        "entry_ids": index.entry_ids,
        "band_vantage": index.band_vantage,
        "band_hi": index.band_hi,
        "band_lo": index.band_lo,
        "value_masks": index.value_masks.astype(np.uint8),
        "value_counts": index.value_counts,
        "defects": index.defects,
        "defects_out": index.defects_out,
        "cal_scores": index.cal_scores,
    }
    return meta, arrays


def import_index(
    meta: dict, arrays: dict, values: np.ndarray
) -> PruningIndex:
    """Rebuild a :class:`PruningIndex` from exported parts. ``arrays``
    may be read-only shared-memory views — nothing here writes to them
    (``value_masks`` is reinterpreted, not copied)."""
    seed, leaf_size, fanout, calibration_samples = meta["params"]
    params = IndexParams(
        seed=int(seed),
        leaf_size=int(leaf_size),
        fanout=int(fanout),
        calibration_samples=int(calibration_samples),
    )
    cards = tuple(int(c) for c in meta["cardinalities"])
    attr_offsets = np.zeros(len(cards) + 1, dtype=np.int64)
    attr_offsets[1:] = np.cumsum(cards)
    masks = arrays["value_masks"]
    if masks.dtype != np.bool_:
        masks = masks.view(np.bool_)
    values = np.asarray(values, dtype=np.int64).reshape(
        int(meta["num_records"]), len(cards)
    )
    return PruningIndex(
        params=params,
        cardinalities=cards,
        attr_offsets=attr_offsets,
        values=values,
        node_parent=np.asarray(arrays["node_parent"]),
        child_start=np.asarray(arrays["child_start"]),
        child_count=np.asarray(arrays["child_count"]),
        leaf_start=np.asarray(arrays["leaf_start"]),
        leaf_count=np.asarray(arrays["leaf_count"]),
        entry_ids=np.asarray(arrays["entry_ids"]),
        band_vantage=np.asarray(arrays["band_vantage"]),
        band_hi=np.asarray(arrays["band_hi"]),
        band_lo=np.asarray(arrays["band_lo"]),
        value_masks=masks,
        value_counts=np.asarray(arrays["value_counts"]),
        defects=np.asarray(arrays["defects"]),
        defects_out=np.asarray(arrays["defects_out"]),
        cal_scores=np.asarray(arrays["cal_scores"]),
    )
