"""Candidate generation over the pruning tree.

For a database object ``X`` and query ``Q`` the pruner condition is
``∀i d_i(x_i, y_i) <= t_i`` with ``t_i = d_i(x_i, q_i)`` (and strict
somewhere) — see :mod:`repro.skyline.domination`.  Two per-node rules
decide whether a subtree can still hold such a ``Y``:

**Exact value rule (sound).**  A node stores, per attribute, the set of
values present beneath it.  If some attribute ``i`` has *no* stored
value ``u`` with ``d_i(x_i, u) <= t_i``, then every descendant ``Y``
has ``d_i(x_i, y_i) > t_i`` and the subtree is discarded.  The rule is
monotone along the tree (a child's value sets are subsets of its
parent's), so the surviving-leaf set — the candidate set — is the same
whether a traversal skips subtrees or every node is evaluated.  Every
true pruner's leaf path survives the rule, so the candidate set is
always a **superset of the true pruner set**; candidates are then
verified pairwise, which is why the exact mode's results are
bit-identical to the AL-Tree oracle's.

**Approximate band rules (calibrated).**  The two classic VP exclusions,
each with a slack drawn from its own triangle-defect quantile table
(:meth:`~repro.index.tree.PruningIndex.slack` /
:meth:`~repro.index.tree.PruningIndex.slack_out`).  A pruner satisfies
``D(x→y) <= Σ_i t_i``, so a band is discarded when it lies wholly
*below* the object — ``D(x→v) − band_hi − slack > Σ_i t_i`` — or wholly
*above* it — ``band_lo − D(v→x) − slack_out > Σ_i t_i``.  The lower cut
removes bands hugging a vantage the object is far from; the upper cut
removes far-out bands for an object sitting near the vantage, which is
what lets cluster-resident objects skip remote outlier mass the
per-attribute value rule cannot see.  Non-metric measures void each
bound for the defect tail above the chosen quantile — that tail is
exactly the recall the caller traded away.

**Approximate leaf-score rule (calibrated).**  The value rule's one
blind spot is a leaf whose attributes are each satisfied by *different*
entries — per-attribute presence holds, yet no single entry is jointly
within every threshold.  At each surviving leaf the approximate mode
computes the **bottleneck score**: leaf entry count times the product
of the two smallest per-attribute within-threshold entry fractions (an
expected-pruner estimate under attribute independence, restricted to
the two most selective attributes because vantage-ring leaves are
anti-correlated across attributes).  Leaves scoring below
:meth:`~repro.index.tree.PruningIndex.score_cutoff` — a low quantile of
the scores truly-prunable calibration objects saw at their best pruner
leaf — are dropped.  The quantile level bounds the pruning recall
surrendered, and the cutoff is monotone in ``recall_target``, so
candidate sets stay nested.

Both backends evaluate the *same* rules on the same float64 values in
the same accumulation order, so their candidate sets are identical;
only the charged costs differ (the scalar path early-aborts, the
vectorized path evaluates whole frontiers).
"""

from __future__ import annotations

import numpy as np

from repro.index.tree import PruningIndex

__all__ = [
    "scalar_candidates",
    "scalar_has_pruner",
    "vector_candidates",
    "vector_has_pruner",
]


def scalar_candidates(
    index: PruningIndex,
    tables: list,
    x: tuple,
    thresholds: list,
    threshold_sum: float,
    slacks: tuple[float, float, float] | None,
    dxv_cache: dict,
) -> tuple[list[int], int, int]:
    """Candidate record ids for one object ``x`` by depth-first
    traversal with subtree skipping.  Returns ``(candidates,
    attr_checks, nodes_visited)``; ``slacks`` is ``None`` for exact mode
    or ``(slack, slack_out, score_cutoff)`` for the two band cuts plus
    the leaf-score cut; ``dxv_cache`` memoises ``(D(x→v), D(v→x))`` per
    vantage across the traversal (callers pass a per-object dict).
    """
    m = index.num_attributes
    values = index.values
    band_vantage = index.band_vantage
    band_hi = index.band_hi
    band_lo = index.band_lo
    child_start = index.child_start
    child_count = index.child_count
    leaf_start = index.leaf_start
    leaf_count = index.leaf_count
    entry_ids = index.entry_ids
    value_counts = index.value_counts
    off = index.attr_offsets
    vlists = index.value_lists()
    rows = [tables[i][x[i]] for i in range(m)]

    candidates: list[int] = []
    checks = 0
    visited = 0
    stack = [0]
    while stack:
        j = stack.pop()
        visited += 1
        if slacks is not None:
            v = int(band_vantage[j])
            if v >= 0:
                pair = dxv_cache.get(v)
                if pair is None:
                    vv = values[v]
                    dxv = 0.0
                    dvx = 0.0
                    for i in range(m):
                        dxv += rows[i][vv[i]]
                        dvx += tables[i][vv[i]][x[i]]
                    checks += 2 * m
                    dxv_cache[v] = pair = (dxv, dvx)
                else:
                    dxv, dvx = pair
                checks += 2
                if dxv - band_hi[j] - slacks[0] > threshold_sum:
                    continue
                if band_lo[j] - dvx - slacks[1] > threshold_sum:
                    continue
        node_vals = vlists[j]
        cc = int(child_count[j])
        if slacks is not None and cc == 0:
            # Leaf in approximate mode: one full pass over the value
            # lists yields both the value verdict (some count > 0 per
            # attribute) and the bottleneck score.
            lc = float(leaf_count[j])
            counts_row = value_counts[j]
            base = off
            fracs = []
            ok = True
            for i in range(m):
                row = rows[i]
                ti = thresholds[i]
                oi = base[i]
                cnt = 0
                for u in node_vals[i]:
                    checks += 1
                    if row[u] <= ti:
                        cnt += int(counts_row[oi + u])
                if cnt == 0:
                    ok = False
                    break
                fracs.append(cnt / lc)
            if not ok:
                continue
            fracs.sort()
            score = lc * fracs[0]
            if m > 1:
                score = score * fracs[1]
            checks += 1
            if score < slacks[2]:
                continue
            ls = int(leaf_start[j])
            candidates.extend(int(r) for r in entry_ids[ls : ls + int(leaf_count[j])])
            continue
        ok = True
        for i in range(m):
            row = rows[i]
            ti = thresholds[i]
            hit = False
            for u in node_vals[i]:
                checks += 1
                if row[u] <= ti:
                    hit = True
                    break
            if not hit:
                ok = False
                break
        if not ok:
            continue
        if cc:
            cs = int(child_start[j])
            stack.extend(range(cs + cc - 1, cs - 1, -1))
        else:
            ls = int(leaf_start[j])
            candidates.extend(int(r) for r in entry_ids[ls : ls + int(leaf_count[j])])
    return candidates, checks, visited


def scalar_has_pruner(
    tables: list,
    values: np.ndarray,
    x_id: int,
    x: tuple,
    thresholds: list,
    candidates: list[int],
) -> tuple[bool, int, int]:
    """Exact pairwise verification of a candidate list, early-aborting
    per pair and short-circuiting on the first verified pruner.
    Returns ``(prunable, attr_checks, pair_tests)``."""
    m = len(thresholds)
    rows = [tables[i][x[i]] for i in range(m)]
    checks = 0
    tests = 0
    for y_id in candidates:
        if y_id == x_id:
            continue  # identity, not value: duplicates still count
        tests += 1
        yv = values[y_id]
        strictly_closer = False
        dominated = True
        for i in range(m):
            checks += 1
            d = rows[i][yv[i]]
            ti = thresholds[i]
            if d > ti:
                dominated = False
                break
            if d < ti:
                strictly_closer = True
        if dominated and strictly_closer:
            return True, checks, tests
    return False, checks, tests


def vector_candidates(
    index: PruningIndex,
    mats: list[np.ndarray],
    query: tuple,
    slacks: tuple[float, float, float] | None,
) -> tuple[list, int, int]:
    """Candidate lists for **every** record at once.

    Returns ``(cand_lists, total_candidates, node_evaluations)`` where
    ``cand_lists[record_id]`` is a list of entry-id arrays (possibly
    empty).  Evaluates the per-node rules as whole-frontier matrix ops:
    for each attribute, one (nodes × values) ∕ (values × values) product
    answers "does node N hold any value within x's threshold" for every
    value class of x simultaneously; a single ascending pass then ANDs
    each node's verdict with its parent's (BFS order guarantees parents
    precede children), which is exactly the scalar traversal's subtree
    skipping."""
    n = index.num_records
    num_nodes = index.num_nodes
    m = index.num_attributes
    values = index.values
    off = index.attr_offsets
    cand_lists: list[list] = [[] for _ in range(n)]
    if n == 0:
        return cand_lists, 0, 0

    passing = np.ones((n, num_nodes), dtype=bool)
    cnt_by_attr: list[np.ndarray] = []
    for i in range(m):
        c = index.cardinalities[i]
        mat = mats[i]
        # allowed[a, u]: is value u within the threshold of an object
        # whose attribute-i value is a (t_i depends on x only through a).
        allowed = mat <= mat[:, query[i]][:, None]
        if slacks is not None:
            # Entry counts drive both the value verdict (count > 0) and
            # the leaf scores.  float32 matmul is exact here: every
            # partial sum is an integer bounded by the subtree size.
            vc = index.value_counts[:, off[i] : off[i + 1]]
            counts = vc.astype(np.float32) @ allowed.T.astype(np.float32)
            cnt_by_attr.append(counts)
            node_ok = counts > 0.0  # (num_nodes, c): node x class verdicts
        else:
            vm = index.value_masks[:, off[i] : off[i + 1]]
            node_ok = (
                vm.astype(np.float32) @ allowed.T.astype(np.float32)
            ) > 0.0  # (num_nodes, c): node x value-class verdicts
        passing &= node_ok[:, values[:, i]].T

    if slacks is not None:
        threshold_sum = np.zeros(n, dtype=np.float64)
        for i in range(m):
            threshold_sum += mats[i][values[:, i], query[i]]
        vantages = np.unique(index.band_vantage[index.band_vantage >= 0])
        dxv = {}
        dvx = {}
        for v in vantages:
            acc = np.zeros(n, dtype=np.float64)
            acc_out = np.zeros(n, dtype=np.float64)
            for i in range(m):
                acc += mats[i][values[:, i], values[v, i]]
                acc_out += mats[i][values[v, i], values[:, i]]
            dxv[int(v)] = acc
            dvx[int(v)] = acc_out

    node_parent = index.node_parent
    band_vantage = index.band_vantage
    band_hi = index.band_hi
    band_lo = index.band_lo
    for j in range(1, num_nodes):
        col = passing[:, j]
        col &= passing[:, node_parent[j]]
        if slacks is not None:
            v = int(band_vantage[j])
            if v >= 0:
                col &= (dxv[v] - band_hi[j] - slacks[0]) <= threshold_sum
                col &= (band_lo[j] - dvx[v] - slacks[1]) <= threshold_sum
        passing[:, j] = col

    total = 0
    leaf_start = index.leaf_start
    leaf_count = index.leaf_count
    entry_ids = index.entry_ids
    for j in np.nonzero(index.child_count == 0)[0]:
        lc = int(leaf_count[j])
        if lc == 0:
            continue
        objs = np.nonzero(passing[:, j])[0]
        if len(objs) == 0:
            continue
        if slacks is not None:
            lc_f = float(lc)
            fr = np.empty((m, len(objs)), dtype=np.float64)
            for i in range(m):
                fr[i] = cnt_by_attr[i][j, values[objs, i]].astype(np.float64) / lc_f
            fr.sort(axis=0)
            score = lc_f * fr[0]
            if m > 1:
                score = score * fr[1]
            objs = objs[score >= slacks[2]]
            if len(objs) == 0:
                continue
        ent = entry_ids[leaf_start[j] : leaf_start[j] + lc]
        total += lc * len(objs)
        for o in objs:
            cand_lists[o].append(ent)
    return cand_lists, total, n * num_nodes


def vector_has_pruner(
    mats: list[np.ndarray],
    values: np.ndarray,
    x_id: int,
    thresholds: np.ndarray,
    cand_parts: list,
) -> tuple[bool, int]:
    """Vectorized pairwise verification for one object. Returns
    ``(prunable, pair_tests)``."""
    if not cand_parts:
        return False, 0
    cand = np.concatenate(cand_parts)
    cand = cand[cand != x_id]
    if len(cand) == 0:
        return False, 0
    m = len(thresholds)
    x = values[x_id]
    dmat = np.empty((len(cand), m), dtype=np.float64)
    for i in range(m):
        dmat[:, i] = mats[i][x[i], values[cand, i]]
    within = dmat <= thresholds
    closer = dmat < thresholds
    dominated = within.all(axis=1) & closer.any(axis=1)
    return bool(dominated.any()), int(len(cand))
