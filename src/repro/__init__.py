"""repro — Reverse Skyline Retrieval with Arbitrary Non-Metric Similarity
Measures.

A full reproduction of Deshpande & Deepak P., EDBT 2011: the Naive, BRS,
SRS and TRS reverse-skyline algorithms (plus the tiled T-SRS/T-TRS and the
Section 6 numeric extension), the substrates they run on (non-metric
dissimilarity spaces, a paged-disk simulator with sequential/random IO
accounting, external multi-attribute sorting, the in-memory AL-Tree,
Z-order tiling, dynamic skyline operators), and an experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import running_example, running_example_query, TRS

    dataset = running_example()
    result = TRS(dataset).run(running_example_query())
    print(result.record_ids)   # (2, 5) — the paper's {O3, O6}

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.bichromatic import (
    bichromatic_reverse_skyline,
    bichromatic_reverse_skyline_naive,
)
from repro.core import (
    ALGORITHMS,
    BRS,
    CostStats,
    NaiveRS,
    NumericTRS,
    RSResult,
    ReverseSkylineAlgorithm,
    SRS,
    TRS,
    TSRS,
    TTRS,
    make_algorithm,
)
from repro.advisor import Recommendation, recommend
from repro.core.multiquery import MultiQueryResult, SharedScanTRS
from repro.core.ordering import OrderChoice, attribute_order_for, choose_attribute_order
from repro.core.skyband import ReverseSkybandTRS, reverse_skyband_naive
from repro.core.vectorized import VectorBRS
from repro.data.stats import DatasetProfile, estimate_pruner_rate, profile_dataset
from repro.engine import QueryLogEntry, ReverseSkylineEngine
from repro.exec import BatchReport, QueryExecutor, QuerySpec, ResultCache
from repro.influence import InfluenceReport, gini, influence_analysis, self_influence
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    PhaseStat,
    QueryProfiler,
    SpanRecord,
    Tracer,
    phase_breakdown,
    snapshot_to_json,
    snapshot_to_prometheus,
    trace_to_json,
)
from repro.persist import load_dataset, save_dataset
from repro.streaming import StreamingReverseSkyline
from repro.uncertain import (
    ProbabilisticResult,
    monte_carlo_membership,
    probabilistic_reverse_skyline,
)
from repro.data import (
    Attribute,
    Dataset,
    Schema,
    census_income_like,
    dataset_from_rows,
    query_from_labels,
    forest_cover_like,
    mixed_dataset,
    query_batch,
    running_example,
    running_example_query,
    synthetic_dataset,
)
from repro.dissim import (
    AbsoluteDifference,
    Dissimilarity,
    DissimilaritySpace,
    MatrixDissimilarity,
    NumericDissimilarity,
    analyze_metricity,
    random_dissimilarity,
)
from repro.errors import (
    AlgorithmError,
    DissimilarityError,
    ExperimentError,
    MemoryBudgetError,
    ReproError,
    SchemaError,
    StorageError,
)
from repro.skyline import (
    bnl_skyline,
    dominates,
    reverse_skyline_by_definition,
    reverse_skyline_by_pruners,
    sorted_skyline,
    tree_skyline,
    tree_top_k,
)
from repro.storage import DiskSimulator, IoCostModel, IoStats, MemoryBudget

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AbsoluteDifference",
    "AlgorithmError",
    "Attribute",
    "BRS",
    "BatchReport",
    "QueryExecutor",
    "QuerySpec",
    "ResultCache",
    "CostStats",
    "Dataset",
    "DiskSimulator",
    "Dissimilarity",
    "DissimilarityError",
    "DissimilaritySpace",
    "ExperimentError",
    "IoCostModel",
    "IoStats",
    "MatrixDissimilarity",
    "MemoryBudget",
    "MemoryBudgetError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PhaseStat",
    "QueryProfiler",
    "SpanRecord",
    "Tracer",
    "DatasetProfile",
    "InfluenceReport",
    "MultiQueryResult",
    "NaiveRS",
    "OrderChoice",
    "ProbabilisticResult",
    "Recommendation",
    "SharedScanTRS",
    "NumericDissimilarity",
    "NumericTRS",
    "QueryLogEntry",
    "RSResult",
    "ReproError",
    "ReverseSkybandTRS",
    "ReverseSkylineAlgorithm",
    "ReverseSkylineEngine",
    "SRS",
    "StreamingReverseSkyline",
    "Schema",
    "SchemaError",
    "StorageError",
    "TRS",
    "TSRS",
    "TTRS",
    "VectorBRS",
    "analyze_metricity",
    "attribute_order_for",
    "bichromatic_reverse_skyline",
    "bichromatic_reverse_skyline_naive",
    "bnl_skyline",
    "census_income_like",
    "choose_attribute_order",
    "dataset_from_rows",
    "dominates",
    "estimate_pruner_rate",
    "forest_cover_like",
    "profile_dataset",
    "recommend",
    "gini",
    "influence_analysis",
    "load_dataset",
    "make_algorithm",
    "mixed_dataset",
    "monte_carlo_membership",
    "phase_breakdown",
    "probabilistic_reverse_skyline",
    "query_batch",
    "query_from_labels",
    "random_dissimilarity",
    "reverse_skyband_naive",
    "reverse_skyline_by_definition",
    "reverse_skyline_by_pruners",
    "running_example",
    "running_example_query",
    "save_dataset",
    "self_influence",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "sorted_skyline",
    "synthetic_dataset",
    "trace_to_json",
    "tree_skyline",
    "tree_top_k",
    "__version__",
]
