"""Deterministic merging of per-query outcomes into one batch report.

Concurrency must not make observability lie. Whatever pool answered the
queries, and in whatever completion order, the merged view is defined
purely by the *input* order of the batch:

- ``results[i]`` is the answer to ``specs[i]`` — always.
- ``stats`` is the commutative sum of the stats of the queries that were
  actually *computed*; cache hits contribute zero work (they cost no
  checks and no page IOs), so totals match what the machine really did.
- ``wall_time_s`` is the elapsed wall-clock of the whole batch, which
  under a pool is less than the summed per-query wall time — the
  difference is the speed-up.
- a query that failed past recovery (see :mod:`repro.faults`) occupies
  its slot as ``results[i] is None`` plus a structured
  :class:`QueryError` in ``errors[i]`` — one bad query never aborts the
  batch and never shifts another query's position.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import CostStats, RSResult

__all__ = ["BatchReport", "QueryError", "merge_batch"]


@dataclass(frozen=True)
class QueryError:
    """Structured capture of one query's terminal failure.

    Picklable (it crosses the process-pool boundary) and carries the
    context a caller needs to triage without a traceback: the query, the
    error class, how many attempts recovery made, and — for storage
    failures — the failing file/page site.
    """

    query: tuple
    error_type: str
    message: str
    attempts: int = 1
    file: str | None = None
    page_id: int | None = None

    @classmethod
    def from_exception(
        cls, exc: Exception, query: tuple, *, attempts: int = 1
    ) -> "QueryError":
        # RetryExhaustedError wraps the final transient failure; surface
        # the inner site context when it has one.
        site = getattr(exc, "last_error", None) or exc
        return cls(
            query=tuple(query),
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=getattr(exc, "attempts", attempts),
            file=getattr(site, "file", None),
            page_id=getattr(site, "page_id", None),
        )

    def describe(self) -> str:
        where = f" at {self.file!r} page {self.page_id}" if self.file else ""
        return (
            f"query {self.query}: {self.error_type}{where} "
            f"after {self.attempts} attempt(s): {self.message}"
        )


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one ``query_many`` batch, in input order."""

    specs: tuple
    #: ``None`` in a slot means that query failed; see ``errors``.
    results: tuple[RSResult | None, ...]
    cached: tuple[bool, ...]
    #: Which of the ``cached`` slots were satisfied by *in-batch* dedup
    #: (an identical spec earlier in this batch) rather than by the
    #: cross-batch memo. ``cached[i] and not deduped[i]`` is a memo hit.
    deduped: tuple[bool, ...]
    #: Per-query engine-path wall time (0.0 for cache hits).
    wall_times_s: tuple[float, ...]
    #: Summed cost of the computed queries (cache hits cost nothing).
    stats: CostStats
    #: Elapsed wall-clock for the whole batch.
    wall_time_s: float
    pool: str
    workers: int
    #: Per-slot terminal failures (``None`` where the query succeeded).
    errors: tuple[QueryError | None, ...] = ()
    #: Which slots were answered by a planner group (one shared
    #: multi-query scan) rather than an individual engine run. Empty
    #: when the executor ran without ``plan=True``.
    planned: tuple[bool, ...] = ()

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i: int) -> RSResult | None:
        return self.results[i]

    @property
    def cache_hits(self) -> int:
        """All slots satisfied without engine work — memo hits plus
        in-batch dedup followers (``memo_hits + dedup_hits``)."""
        return sum(self.cached)

    @property
    def memo_hits(self) -> int:
        """Slots answered by the cross-batch :class:`ResultCache` memo."""
        return sum(1 for hit, dup in zip(self.cached, self.deduped) if hit and not dup)

    @property
    def dedup_hits(self) -> int:
        """Slots answered by an identical spec earlier in this batch."""
        return sum(1 for hit, dup in zip(self.cached, self.deduped) if hit and dup)

    @property
    def failed(self) -> int:
        return sum(1 for e in self.errors if e is not None)

    @property
    def ok(self) -> bool:
        """Every query in the batch was answered."""
        return self.failed == 0

    @property
    def computed(self) -> int:
        return len(self.results) - self.cache_hits - self.failed

    def failures(self) -> list[tuple[int, QueryError]]:
        """The failed slots as ``(batch_index, error)`` pairs."""
        return [(i, e) for i, e in enumerate(self.errors) if e is not None]

    def record_id_sets(self) -> list[tuple[int, ...] | None]:
        """The per-query answers, for equality checks against a
        sequential run (``None`` marks a failed query)."""
        return [None if r is None else r.record_ids for r in self.results]

    @property
    def planned_count(self) -> int:
        """Slots answered through a planner group."""
        return sum(self.planned)

    @property
    def backends(self) -> tuple[str, ...]:
        """Distinct compute backends that produced this batch's results
        (normally one; mixed per-spec algorithm overrides can yield two)."""
        return tuple(
            sorted({r.backend for r in self.results if r is not None})
        )

    def summary(self) -> dict:
        total_query_time = sum(self.wall_times_s)
        return {
            "queries": len(self.results),
            "backends": list(self.backends),
            "cache_hits": self.cache_hits,
            "memo_hits": self.memo_hits,
            "dedup_hits": self.dedup_hits,
            "computed": self.computed,
            "failed": self.failed,
            "planned": self.planned_count,
            "pool": self.pool,
            "workers": self.workers,
            "checks": self.stats.checks,
            "page_ios": self.stats.io.total,
            "io_retries": self.stats.io.retries,
            "faults_seen": self.stats.io.faults_seen,
            "batch_wall_time_s": self.wall_time_s,
            "summed_query_time_s": total_query_time,
            "speedup_vs_serial_sum": (
                total_query_time / self.wall_time_s if self.wall_time_s > 0 else 0.0
            ),
        }


def merge_batch(
    specs,
    results,
    cached,
    wall_times_s,
    *,
    batch_wall_time_s: float,
    pool: str,
    workers: int,
    errors=None,
    deduped=None,
    planned=None,
) -> BatchReport:
    """Assemble the deterministic batch view (everything in input order)."""
    if errors is None:
        errors = [None] * len(results)
    if deduped is None:
        deduped = [False] * len(results)
    if planned is None:
        planned = [False] * len(results)
    stats = CostStats.merged(
        r.stats for r, hit in zip(results, cached) if r is not None and not hit
    )
    return BatchReport(
        specs=tuple(specs),
        results=tuple(results),
        cached=tuple(cached),
        deduped=tuple(deduped),
        wall_times_s=tuple(wall_times_s),
        stats=stats,
        wall_time_s=batch_wall_time_s,
        pool=pool,
        workers=workers,
        errors=tuple(errors),
        planned=tuple(planned),
    )
