"""Deterministic merging of per-query outcomes into one batch report.

Concurrency must not make observability lie. Whatever pool answered the
queries, and in whatever completion order, the merged view is defined
purely by the *input* order of the batch:

- ``results[i]`` is the answer to ``specs[i]`` — always.
- ``stats`` is the commutative sum of the stats of the queries that were
  actually *computed*; cache hits contribute zero work (they cost no
  checks and no page IOs), so totals match what the machine really did.
- ``wall_time_s`` is the elapsed wall-clock of the whole batch, which
  under a pool is less than the summed per-query wall time — the
  difference is the speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import CostStats, RSResult

__all__ = ["BatchReport", "merge_batch"]


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one ``query_many`` batch, in input order."""

    specs: tuple
    results: tuple[RSResult, ...]
    cached: tuple[bool, ...]
    #: Per-query engine-path wall time (0.0 for cache hits).
    wall_times_s: tuple[float, ...]
    #: Summed cost of the computed queries (cache hits cost nothing).
    stats: CostStats
    #: Elapsed wall-clock for the whole batch.
    wall_time_s: float
    pool: str
    workers: int

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i: int) -> RSResult:
        return self.results[i]

    @property
    def cache_hits(self) -> int:
        return sum(self.cached)

    @property
    def computed(self) -> int:
        return len(self.results) - self.cache_hits

    def record_id_sets(self) -> list[tuple[int, ...]]:
        """The per-query answers, for equality checks against a
        sequential run."""
        return [r.record_ids for r in self.results]

    def summary(self) -> dict:
        total_query_time = sum(self.wall_times_s)
        return {
            "queries": len(self.results),
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "pool": self.pool,
            "workers": self.workers,
            "checks": self.stats.checks,
            "page_ios": self.stats.io.total,
            "batch_wall_time_s": self.wall_time_s,
            "summed_query_time_s": total_query_time,
            "speedup_vs_serial_sum": (
                total_query_time / self.wall_time_s if self.wall_time_s > 0 else 0.0
            ),
        }


def merge_batch(
    specs,
    results,
    cached,
    wall_times_s,
    *,
    batch_wall_time_s: float,
    pool: str,
    workers: int,
) -> BatchReport:
    """Assemble the deterministic batch view (everything in input order)."""
    stats = CostStats.merged(
        r.stats for r, hit in zip(results, cached) if not hit
    )
    return BatchReport(
        specs=tuple(specs),
        results=tuple(results),
        cached=tuple(cached),
        wall_times_s=tuple(wall_times_s),
        stats=stats,
        wall_time_s=batch_wall_time_s,
        pool=pool,
        workers=workers,
    )
