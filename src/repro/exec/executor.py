"""Concurrent batch-query execution.

The paper's scan-based algorithms are embarrassingly parallel across
*queries*: each ``run`` stages its own simulated disk, builds its own
trees and touches only read-only prepared state (the layout and the
dissimilarity lookup tables). :class:`QueryExecutor` exploits that by
fanning a batch of reverse-skyline / skyband / attribute-subset queries
over a thread or process pool, with an optional :class:`ResultCache`
memoising repeated queries and deduplicating identical queries *within*
a batch (the first occurrence in input order is computed; the rest reuse
its result).

Determinism contract: answers depend only on the spec, never on the
pool, the worker count, the cache state, or the batch order —
``tests/test_exec.py`` and ``repro.testing.verify.verify_executor``
enforce this differentially against the sequential engine.

Pools
-----
``serial``
    An inline loop — the baseline the differential tests compare against.
``thread``
    ``ThreadPoolExecutor``; shares the engine's prepared algorithm
    instances (safe: ``run`` only reads them). Best when the cache absorbs
    most of the batch or ``backing_dir`` makes queries IO-bound.
``process``
    ``ProcessPoolExecutor``; each worker builds its own engine over the
    (pickled or forked) dataset, sidestepping the GIL for CPU-bound
    batches. Worker engines are constructed once per pool, so the layout
    sort is paid per worker, not per query.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.core.base import CostStats, RSResult, Stopwatch
from repro.errors import AlgorithmError, ReproError, TransientError
from repro.exec.cache import CacheKey, ResultCache
from repro.exec.merge import BatchReport, QueryError, merge_batch
from repro.faults.retry import RetryPolicy
from repro.obs import hooks as _obs

__all__ = ["QuerySpec", "QueryExecutor", "as_spec", "planner_group_key"]

#: The only shared-scan family today. Group membership keys on the
#: *scalar* family name (backends never change answers), so TRS and
#: VectorTRS requests group together.
_GROUP_FAMILY = "TRS"

_KINDS = ("query", "skyband", "subset")


@dataclass(frozen=True)
class QuerySpec:
    """One query in a batch: what to ask, not how to run it."""

    query: tuple
    kind: str = "query"
    k: int = 1
    algorithm: str | None = None
    #: Attribute names or indices for ``kind="subset"`` (Section 5.6).
    attributes: tuple | None = None
    #: Per-request approximate-mode pruning-recall target (``None`` keeps
    #: exact mode). Part of the result-cache key: an exact answer and an
    #: approximate one for the same query are different results.
    recall_target: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise AlgorithmError(
                f"unknown query kind {self.kind!r}; known: {', '.join(_KINDS)}"
            )
        if self.kind == "skyband" and self.k < 1:
            raise AlgorithmError(f"skyband needs k >= 1, got {self.k}")
        if self.kind == "subset" and not self.attributes:
            raise AlgorithmError("subset queries need a non-empty attribute tuple")
        if self.recall_target is not None:
            if self.kind != "query":
                raise AlgorithmError(
                    f"recall_target only applies to kind='query', not {self.kind!r}"
                )
            if not 0.0 <= self.recall_target <= 1.0:
                raise AlgorithmError(
                    f"recall_target must be in [0, 1], got {self.recall_target!r}"
                )


def as_spec(
    item,
    *,
    kind: str = "query",
    k: int = 1,
    algorithm: str | None = None,
    attributes: Sequence | None = None,
    recall_target: float | None = None,
) -> QuerySpec:
    """Coerce a plain query tuple (or a ready spec) into a QuerySpec."""
    if isinstance(item, QuerySpec):
        return item
    return QuerySpec(
        query=tuple(item),
        kind=kind,
        k=k if kind == "skyband" else 1,
        algorithm=algorithm,
        attributes=tuple(attributes) if attributes is not None else None,
        recall_target=recall_target if kind == "query" else None,
    )


@dataclass(frozen=True)
class _JobOutcome:
    """What one pending job produced — success or structured failure.

    Plain picklable dataclass: it is also the wire format coming back
    from process-pool workers, so per-worker cost stats (inside
    ``result.stats``, including the IO retry counters) and failures are
    never silently dropped when a pool is torn down.
    """

    result: object | None  # RSResult on success
    wall_s: float
    error: QueryError | None = None
    attempts: int = 1
    #: The job's span records (``repro.obs``), ids local to the job; the
    #: executor grafts them under the batch span in job order so the
    #: merged trace tree is identical whatever pool answered the batch.
    trace: tuple = ()
    #: Worker-local :class:`~repro.obs.metrics.MetricsSnapshot` (process
    #: pool only; serial/thread jobs write the shared registry directly).
    metrics: object | None = None


def _run_with_recovery(
    engine, spec: QuerySpec, injector, policy: RetryPolicy
) -> _JobOutcome:
    """Answer one spec, retrying transient failures, capturing the rest.

    The recovery contract the chaos harness asserts: a transient fault
    (worker crash/timeout from the injector, or a raw transient that
    escaped the storage layer) is retried under ``policy``; retry
    exhaustion and every other library error become a structured
    :class:`QueryError` outcome. Nothing an individual query does can
    abort the batch — only genuine bugs (non-``ReproError``) propagate.
    """
    handle = _obs.begin_job("exec.query", kind=spec.kind)
    attempt = 0
    outcome: _JobOutcome | None = None
    try:
        while outcome is None:
            try:
                if injector is not None:
                    injector.query_fault(spec.query)
                result, wall = engine._timed_execute(spec)
                outcome = _JobOutcome(result, wall, None, attempts=attempt + 1)
            except TransientError as exc:
                attempt += 1
                if _obs.enabled:
                    _obs.inc("repro_query_retries_total")
                try:
                    policy.backoff(attempt, exc)
                except ReproError as final:
                    outcome = _JobOutcome(
                        None,
                        0.0,
                        QueryError.from_exception(final, spec.query, attempts=attempt),
                        attempts=attempt,
                    )
            except ReproError as exc:
                # Includes RetryExhaustedError escalated by the storage layer:
                # its retry budget is spent, so it is terminal here.
                outcome = _JobOutcome(
                    None,
                    0.0,
                    QueryError.from_exception(exc, spec.query, attempts=attempt + 1),
                    attempts=attempt + 1,
                )
    finally:
        if handle is not None:
            root = handle[1]
            if outcome is not None:
                root.annotate("attempts", outcome.attempts)
                if outcome.error is not None:
                    root.annotate("failed", outcome.error.error_type)
            trace = _obs.end_job(handle)
    if handle is not None and outcome is not None:
        outcome = replace(outcome, trace=trace)
    return outcome


# -- process-pool plumbing ----------------------------------------------------
# Workers hold their own engine plus fault machinery (module globals set
# by the pool initializer); specs go over the wire, _JobOutcomes come
# back — all plain picklable dataclasses.
_WORKER_ENGINE = None
_WORKER_INJECTOR = None
_WORKER_POLICY = RetryPolicy()


def _process_worker_init(
    dataset,
    algorithm,
    memory_fraction,
    page_bytes,
    fault_plan=None,
    fault_seed=0,
    retry_args=None,
    obs_enabled=False,
    backend=None,
    manifest=None,
    shards=None,
    recall_target=None,
    maint=None,
) -> None:
    global _WORKER_ENGINE, _WORKER_INJECTOR, _WORKER_POLICY
    from repro.engine import ReverseSkylineEngine

    if obs_enabled:
        # Mirror the parent's observability state: each job then resets
        # the worker registry, snapshots after, and ships the snapshot
        # home inside its _JobOutcome (see _process_worker_run).
        _obs.enable(reset_state=True)
    if manifest is not None:
        # Zero-copy path: the dataset slot arrived empty; rebuild it over
        # the parent's shared-memory segment and seed the worker's plan
        # cache from the published plan arrays (attach keeps the segment
        # mapped for the worker's lifetime — record views alias it).
        from repro.exec import shm as _shm

        dataset = _shm.dataset_from_manifest(manifest)
        _shm.seed_plan_cache(manifest)
    _WORKER_INJECTOR = None
    if fault_plan is not None:
        from repro.faults.inject import FaultInjector

        _WORKER_INJECTOR = FaultInjector(fault_plan, fault_seed)
    _WORKER_POLICY = RetryPolicy(**retry_args) if retry_args else RetryPolicy()
    if maint is not None:
        # Maintained parent: the worker mirrors it — same base (shm or
        # pickle), same engine family, plus the parent's delta state
        # (inline blob, or a published delta segment alongside the base
        # manifest). Workers never compact; the parent drives their
        # lifecycle and rebuilds pools at compaction.
        from repro.maint import MaintainedEngine

        _WORKER_ENGINE = MaintainedEngine(
            dataset,
            algorithm=algorithm,
            memory_fraction=memory_fraction,
            page_bytes=page_bytes,
            log_queries=False,
            fault_injector=_WORKER_INJECTOR,
            retry_policy=_WORKER_POLICY,
            backend=backend,
            recall_target=recall_target,
        )
        if maint.get("manifest") is not None:
            from repro.exec import shm as _shm

            blob = _shm.deltas_from_manifest(maint["manifest"])
        else:
            blob = maint["inline"]
        _WORKER_ENGINE.sync_maint_state(blob)
        return
    _WORKER_ENGINE = ReverseSkylineEngine(
        dataset,
        algorithm=algorithm,
        memory_fraction=memory_fraction,
        page_bytes=page_bytes,
        log_queries=False,
        fault_injector=_WORKER_INJECTOR,
        retry_policy=_WORKER_POLICY,
        backend=backend,
        shards=shards,
        recall_target=recall_target,
    )


def _process_worker_run(spec: QuerySpec) -> _JobOutcome:
    assert _WORKER_ENGINE is not None, "pool initializer did not run"
    if _obs.enabled:
        _obs.registry().reset()
    outcome = _run_with_recovery(
        _WORKER_ENGINE, spec, _WORKER_INJECTOR, _WORKER_POLICY
    )
    if _obs.enabled:
        # Per-job delta snapshot; the parent merges them in job order
        # (sums commute, so worker scheduling cannot change the totals).
        outcome = replace(outcome, metrics=_obs.snapshot())
    return outcome


def _process_worker_run_payload(wire):
    """Run one planner payload in a pool worker: a plain spec, or a
    group routed through the shared multi-query scan. A ``("maint",
    blob, inner)`` envelope first syncs the worker's maintained engine
    to the parent's delta epoch (idempotent: stale blobs are ignored),
    then runs the inner payload — this is how the resident service
    streams updates into a *persistent* pool without republishing."""
    if wire[0] == "maint":
        _, blob, wire = wire
        assert _WORKER_ENGINE is not None, "pool initializer did not run"
        sync = getattr(_WORKER_ENGINE, "sync_maint_state", None)
        if sync is not None:
            sync(blob)
    if wire[0] == "single":
        return _process_worker_run(wire[1])
    _, specs, backend = wire
    assert _WORKER_ENGINE is not None, "pool initializer did not run"
    if _obs.enabled:
        _obs.registry().reset()
    outcomes = _run_group(
        _WORKER_ENGINE, specs, backend, _WORKER_INJECTOR, _WORKER_POLICY
    )
    if _obs.enabled:
        outcomes[0] = replace(outcomes[0], metrics=_obs.snapshot())
    return outcomes


# -- planner group execution --------------------------------------------------


def planner_group_key(engine, spec: QuerySpec):
    """The planner compatibility key for ``spec`` on ``engine``, or
    ``None`` when it must run as an individual job.

    Groupable means: a plain reverse-skyline query (no skyband k, no
    attribute subset) whose algorithm resolves into the shared-scan
    family. The key is ``(layout fingerprint, family, backend)`` —
    exactly the inputs :class:`SharedScanTRS` answers under, so every
    member of a group is guaranteed the same answer it would get from
    its own engine run. Shared by :class:`QueryExecutor` and the
    resident service's micro-batcher (:mod:`repro.serve.batcher`).
    """
    if spec.kind != "query" or spec.attributes is not None:
        return None
    if getattr(spec, "recall_target", None) is not None:
        # Approximate requests carry their own recall contract; the
        # shared scan only answers exact.
        return None
    if getattr(engine, "maint_active", False):
        # Maintained engines answer in stable ids over base + deltas;
        # shared scans know neither the overlay nor the id translation.
        return None
    from repro.kernels import scalar_variant

    name = spec.algorithm or engine.default_algorithm
    if scalar_variant(name) != _GROUP_FAMILY:
        return None
    if name != scalar_variant(name):
        # An explicit vector-variant request pins the numpy backend.
        backend = "numpy"
    else:
        backend = getattr(engine, "backend", None) or "auto"
    return (engine.layout_fingerprint(), _GROUP_FAMILY, backend)


def _shared_scan_for(engine, backend):
    """The engine's cached :class:`SharedScanTRS` for ``backend`` (one
    per engine per backend — the layout sort and the plan-cache keys are
    then paid once, whatever pool answers the groups)."""
    from repro.core.multiquery import SharedScanTRS

    scans = engine.__dict__.get("_shared_scans")
    if scans is None:
        with engine._lock:
            scans = engine.__dict__.setdefault("_shared_scans", {})
    inst = scans.get(backend)
    if inst is None:
        with engine._lock:
            inst = scans.get(backend)
            if inst is None:
                inst = SharedScanTRS(
                    engine.dataset,
                    memory_fraction=engine.memory_fraction,
                    page_bytes=engine.page_bytes,
                    backend=backend,
                    fault_injector=engine.fault_injector,
                    retry_policy=engine.retry_policy,
                )
                inst.prepare()
                scans[backend] = inst
    return inst


def _group_outcomes(specs, mq, wall_s: float) -> list:
    """Split one :class:`MultiQueryResult` into per-query outcomes whose
    stats sum exactly to the shared run's stats.

    Per-query attributable cost (the phase-split check counts) lands on
    its owner; shared cost (the scan IO, the batch/pass counters, the
    group wall time, the pruner-test remainder) lands on the group's
    first member — so ``CostStats.merged`` over the members reproduces
    the shared totals and batch-level accounting stays truthful.
    """
    nq = len(specs)
    g = mq.stats
    pqc1 = mq.per_query_checks_phase1 or mq.per_query_checks or (0,) * nq
    pqc2 = mq.per_query_checks_phase2 or (0,) * nq
    tests_each = g.pruner_tests // nq
    outcomes = []
    for i in range(nq):
        stats = CostStats()
        stats.checks_phase1 = pqc1[i]
        stats.checks_phase2 = pqc2[i]
        stats.pruner_tests = tests_each
        stats.result_count = len(mq.results[i])
        if i == 0:
            stats.pruner_tests += g.pruner_tests - tests_each * nq
            stats.db_passes = g.db_passes
            stats.phase1_batches = g.phase1_batches
            stats.phase2_batches = g.phase2_batches
            stats.intermediate_count = g.intermediate_count
            stats.phase1_pruned = g.phase1_pruned
            stats.wall_time_s = g.wall_time_s
            stats.io = g.io
        result = RSResult(
            "SharedScanTRS", mq.queries[i], mq.results[i], stats,
            backend=mq.backend,
        )
        outcomes.append(
            _JobOutcome(result, wall_s if i == 0 else 0.0, None)
        )
    return outcomes


def _run_group(engine, specs, backend, injector, policy) -> list:
    """Answer a planner group through one shared scan.

    Fault contract mirrors :func:`_run_with_recovery`: every member's
    scheduled worker fault is consulted before the scan, transient
    failures retry the whole group under ``policy``, and anything
    terminal falls back to per-member recovery — so one misbehaving
    member degrades the group to individual runs instead of aborting
    the batch (or poisoning its neighbours' answers).
    """
    handle = _obs.begin_job("exec.group", kind="group")
    outcomes: list | None = None
    try:
        attempt = 0
        mq = None
        wall = 0.0
        while mq is None:
            try:
                if injector is not None:
                    for spec in specs:
                        injector.query_fault(spec.query)
                shared = _shared_scan_for(engine, backend)
                with Stopwatch() as watch:
                    mq = shared.run_batch([s.query for s in specs])
                wall = watch.elapsed_s
            except TransientError as exc:
                attempt += 1
                if _obs.enabled:
                    _obs.inc("repro_query_retries_total")
                try:
                    policy.backoff(attempt, exc)
                except ReproError:
                    break
            except ReproError:
                break
        grouped = mq is not None
        if grouped:
            outcomes = _group_outcomes(specs, mq, wall)
        else:
            if _obs.enabled:
                _obs.inc("repro_plan_fallbacks_total")
            outcomes = [
                _run_with_recovery(engine, s, injector, policy) for s in specs
            ]
    finally:
        if handle is not None:
            root = handle[1]
            root.annotate("queries", len(specs))
            trace = _obs.end_job(handle)
    if handle is not None and outcomes and grouped:
        # Fallback members carry their own per-query recovery traces;
        # only a genuinely shared run reports the group trace.
        outcomes[0] = replace(outcomes[0], trace=trace)
    return outcomes


def _warm_plan_cache(engine) -> None:
    """Best-effort: build the family's phase-1/scan plans into the
    process-wide plan cache *before* a pool starts, so forked workers
    inherit them for free (copy-on-write) and the shm publisher has
    concrete arrays to export for spawn-style workers. The warmed
    instance is kept on the engine so repeat batches skip the rebuild
    (``invalidate_caches`` drops it); a dataset the numpy kernels cannot
    serve is simply skipped."""
    from repro.core.vector_trs import VectorTRS
    from repro.storage.disk import DiskSimulator

    if engine.__dict__.get("_plan_warm") is not None:
        return
    try:
        algo = VectorTRS(
            engine.dataset,
            memory_fraction=engine.memory_fraction,
            page_bytes=engine.page_bytes,
        )
        algo.prepare()
        disk = DiskSimulator(algo.page_bytes)
        try:
            data_file = disk.load_entries(
                engine.dataset.schema, algo.layout, "data"
            )
            algo._phase1_batches(data_file)
            algo._scan_arrays(data_file)
        finally:
            disk.close()
        with engine._lock:
            engine.__dict__["_plan_warm"] = algo
    except ReproError:
        pass


class QueryExecutor:
    """Fan batches of queries over a pool, memoising through a cache.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.ReverseSkylineEngine` that owns the
        dataset and the prepared algorithm instances.
    pool:
        ``"serial"``, ``"thread"`` or ``"process"``.
    workers:
        Pool size; defaults to ``min(4, cpu_count)``.
    cache:
        ``True`` for a private :class:`ResultCache`, an existing cache to
        share (e.g. the engine's), or ``None``/``False`` for no caching.
    fault_injector / retry_policy:
        Fault machinery for worker-level faults and query retries;
        default to the engine's own (set when the engine was constructed
        with a :class:`~repro.faults.FaultInjector`).
    plan:
        Enable the batch planner: compatible specs (same layout
        fingerprint, same scalar algorithm family, same backend) are
        grouped and answered through one shared
        :class:`~repro.core.multiquery.SharedScanTRS` scan per group
        chunk, instead of one engine run per query. Answers stay
        bit-identical; per-query stats carry the attributable check
        counts while shared IO lands on each group's first member.
    shm:
        Process pool only: publish the dataset and the already-built
        numpy plans to workers over ``multiprocessing.shared_memory``
        (see :mod:`repro.exec.shm`) instead of pickling the dataset
        into every worker. Falls back to the pickle path (and counts
        the fallback) for datasets the flat-array codec cannot carry.
    """

    def __init__(
        self,
        engine,
        *,
        pool: str = "thread",
        workers: int | None = None,
        cache: ResultCache | bool | None = None,
        cache_capacity: int = 1024,
        fault_injector=None,
        retry_policy: RetryPolicy | None = None,
        plan: bool = False,
        shm: bool = False,
    ) -> None:
        if pool not in ("serial", "thread", "process"):
            raise AlgorithmError(
                f"unknown pool kind {pool!r}; known: serial, thread, process"
            )
        self.engine = engine
        self.pool = pool
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise AlgorithmError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if cache is True:
            cache = ResultCache(cache_capacity)
        elif cache is False:
            cache = None
        self.cache = cache
        if fault_injector is None:
            fault_injector = getattr(engine, "fault_injector", None)
        self.fault_injector = fault_injector
        if retry_policy is None:
            retry_policy = getattr(engine, "retry_policy", None) or RetryPolicy()
        self.retry_policy = retry_policy
        self.plan = bool(plan)
        self.shm = bool(shm)

    # -- public API ---------------------------------------------------------
    def run_batch(
        self,
        queries: Sequence,
        *,
        kind: str = "query",
        k: int = 1,
        algorithm: str | None = None,
        attributes: Sequence | None = None,
    ) -> BatchReport:
        """Answer every query; results come back in input order.

        ``queries`` may mix plain tuples (interpreted with the keyword
        defaults) and explicit :class:`QuerySpec` objects. A query that
        fails past recovery becomes a structured error entry in the
        report (``results[i] is None``, ``errors[i]`` set) — it never
        aborts the rest of the batch.
        """
        specs = [
            as_spec(q, kind=kind, k=k, algorithm=algorithm, attributes=attributes)
            for q in queries
        ]
        if not specs:
            raise AlgorithmError("need at least one query")
        engine = self.engine
        batch_watch = Stopwatch()

        n = len(specs)
        results: list = [None] * n
        cached = [False] * n
        deduped = [False] * n
        wall_times = [0.0] * n
        errors: list[QueryError | None] = [None] * n

        batch_span = _obs.span(
            "exec.batch", pool=self.pool, workers=self.workers, queries=n
        )
        batch_span.__enter__()
        try:

            # Partition the batch into cache hits and unique pending jobs.
            # Identical specs collapse onto one job whenever a cache is
            # attached (in-flight dedup); the first occurrence is the computed
            # one, later occurrences count as hits.
            jobs: list[tuple[QuerySpec, list[int]]] = []
            keys: list[CacheKey | None] = [None] * n
            cache_version: int | None = None
            if self.cache is not None:
                fingerprint = engine.layout_fingerprint()
                # Snapshot the cache version with the fingerprint: an
                # invalidate() racing this batch must drop our later put()s,
                # not let them re-insert results keyed by the old fingerprint.
                cache_version = self.cache.version
                job_of: dict[CacheKey, int] = {}
                for i, spec in enumerate(specs):
                    try:
                        key = self._cache_key(spec, fingerprint)
                    except ReproError:
                        # An unresolvable spec (e.g. unknown attribute) is
                        # uncacheable; run it as its own job so the failure
                        # is captured per-query, not thrown at the batch.
                        jobs.append((spec, [i]))
                        continue
                    keys[i] = key
                    hit = self.cache.get(key)
                    if hit is not None:
                        results[i] = hit
                        cached[i] = True
                        continue
                    j = job_of.get(key)
                    if j is None:
                        job_of[key] = len(jobs)
                        jobs.append((spec, [i]))
                    else:
                        jobs[j][1].append(i)
                        cached[i] = True
                        deduped[i] = True
            else:
                jobs = [(spec, [i]) for i, spec in enumerate(specs)]

            planned_flags = [False] * n
            job_specs = [spec for spec, _ in jobs]
            if self.plan:
                outcomes, planned_jobs = self._execute_planned(job_specs)
            else:
                outcomes, planned_jobs = self._execute(job_specs), set()
            for j, ((spec, indices), outcome) in enumerate(zip(jobs, outcomes)):
                if j in planned_jobs and outcome.error is None:
                    for i in indices:
                        planned_flags[i] = True
                if _obs.enabled:
                    # Job order, not completion order: grafted span ids
                    # and merged counters come out identical for serial,
                    # thread and process pools.
                    if outcome.trace:
                        # getattr: if obs was flipped on mid-batch the
                        # batch span is the null span; graft as roots.
                        _obs.adopt_job_trace(
                            outcome.trace,
                            parent_id=getattr(batch_span, "span_id", None),
                        )
                    if outcome.metrics is not None:
                        _obs.registry().merge(outcome.metrics)
                first = indices[0]
                if outcome.error is not None:
                    # The whole dedup group shares the failure; none of its
                    # slots counts as a cache hit and nothing is cached.
                    for i in indices:
                        results[i] = None
                        errors[i] = outcome.error
                        cached[i] = False
                        deduped[i] = False
                    continue
                results[first] = outcome.result
                wall_times[first] = outcome.wall_s
                for i in indices[1:]:
                    results[i] = outcome.result
                if self.cache is not None and keys[first] is not None:
                    self.cache.put(keys[first], outcome.result, version=cache_version)

            # One pass in input order keeps the engine's query log and
            # aggregate counters deterministic under any pool.
            engine._record_batch(specs, results, cached, wall_times, errors)
            report = merge_batch(
                specs,
                results,
                cached,
                wall_times,
                batch_wall_time_s=batch_watch.stop(),
                pool=self.pool,
                workers=self.workers,
                errors=errors,
                deduped=deduped,
                planned=planned_flags,
            )
            if _obs.enabled:
                batch_span.annotate("memo_hits", report.memo_hits)
                batch_span.annotate("dedup_hits", report.dedup_hits)
                batch_span.annotate("failed", report.failed)
                _obs.inc("repro_batches_total", 1, pool=self.pool)
                _obs.inc("repro_batch_queries_total", n)
                _obs.inc("repro_batch_memo_hits_total", report.memo_hits)
                _obs.inc("repro_batch_dedup_hits_total", report.dedup_hits)
                _obs.inc("repro_batch_failures_total", report.failed)
                _obs.observe("repro_batch_wall_seconds", report.wall_time_s)
            return report
        finally:
            batch_span.__exit__(None, None, None)

    # -- internals ----------------------------------------------------------
    def _cache_key(self, spec: QuerySpec, fingerprint: str) -> CacheKey:
        return CacheKey(
            kind=spec.kind,
            algorithm=spec.algorithm or self.engine.default_algorithm,
            fingerprint=fingerprint,
            query=tuple(spec.query),
            k=spec.k,
            attributes=(
                self.engine._resolve_indices(spec.attributes)
                if spec.attributes is not None
                else None
            ),
            recall_target=getattr(spec, "recall_target", None),
        )

    def _retry_args(self) -> dict:
        """The retry policy as picklable constructor kwargs for process
        workers (a custom ``sleep`` hook stays local — workers use the
        real ``time.sleep``)."""
        p = self.retry_policy
        return {
            "max_attempts": p.max_attempts,
            "base_delay_s": p.base_delay_s,
            "multiplier": p.multiplier,
            "max_delay_s": p.max_delay_s,
            "jitter": p.jitter,
            # A None salt stays None on the wire: each worker then jitters
            # from its *own* pid, which is the whole decorrelation point.
            "jitter_salt": p.jitter_salt,
        }

    def _process_initargs(self, *, warm: bool = False):
        """The process-pool initializer arguments, plus the shm manifests
        to unlink once the pool is gone (an empty tuple on the pickle
        path).

        With ``shm`` enabled the dataset slot ships as ``None`` and a
        :class:`~repro.exec.shm.ShmManifest` rides along instead; the
        worker attaches, rebuilds the dataset over the shared arrays and
        seeds its plan cache from the published plans. ``warm`` builds
        the family plans in *this* process first, so forked workers
        inherit them and the publisher has them to export.

        A maintained engine additionally exports its delta state: over a
        delta segment published alongside the base manifest when shm is
        on (same ``repro-shm-`` prefix, same unlink lifecycle, so the
        leak audits cover it), inline in the initargs otherwise. The base
        the workers build over is the engine's *compacted* base; deltas
        ride the wire so worker answers match the parent's epoch exactly.
        """
        engine = self.engine
        injector = self.fault_injector
        fault_plan = injector.plan if injector is not None else None
        fault_seed = injector.seed if injector is not None else 0
        if warm:
            _warm_plan_cache(engine)
        manifest = None
        if self.shm:
            from repro.exec import shm as _shm

            manifest = _shm.publish_engine(engine)
            if manifest is None and _obs.enabled:
                _obs.inc("repro_shm_fallbacks_total")
        manifests = () if manifest is None else (manifest,)
        maint = None
        export_wire = getattr(engine, "_export_maint_wire", None)
        if export_wire is not None:
            blob = export_wire()
            maint = {"inline": blob, "manifest": None}
            if manifest is not None:
                from repro.exec import shm as _shm

                delta_manifest = _shm.publish_deltas(blob)
                if delta_manifest is not None:
                    maint = {"inline": None, "manifest": delta_manifest}
                    manifests = manifests + (delta_manifest,)
        return manifests, (
            None if manifest is not None else engine.dataset,
            engine.default_algorithm,
            engine.memory_fraction,
            engine.page_bytes,
            fault_plan,
            fault_seed,
            self._retry_args(),
            _obs.enabled,
            getattr(engine, "backend", None),
            manifest,
            getattr(engine, "shards", None),
            getattr(engine, "recall_target", None),
            maint,
        )

    def _group_key(self, spec: QuerySpec):
        """See :func:`planner_group_key` (shared with the micro-batcher)."""
        return planner_group_key(self.engine, spec)

    def _execute_planned(self, job_specs: list[QuerySpec]):
        """Plan + run the pending jobs: compatible specs are grouped and
        answered through shared scans, the rest run individually.

        Returns ``(outcomes, planned_jobs)`` with outcomes in job order
        and ``planned_jobs`` the set of job indices genuinely answered by
        a shared scan (group members that degraded to per-query recovery
        are *not* in it — the ``planned`` column never lies).

        Grouping is deterministic: groups keep their members in job
        order, each group is split into at most ``workers`` contiguous
        chunks (one chunk when serial — there is nothing to overlap),
        never more than ``members // 2`` so every chunk keeps at least
        two queries per shared scan, and payloads are dispatched ordered
        by their first member's job index. A chunk that still ends up
        with a single member runs as a plain single; a one-query
        "shared" scan would only add overhead.
        """
        if not job_specs:
            return [], set()
        groups: dict[tuple, list[int]] = {}
        singles: list[int] = []
        for j, spec in enumerate(job_specs):
            key = self._group_key(spec)
            if key is None:
                singles.append(j)
            else:
                groups.setdefault(key, []).append(j)

        payloads: list[tuple[tuple, list[int]]] = []
        for key, members in groups.items():
            if len(members) < 2:
                singles.extend(members)
                continue
            if self.pool == "serial":
                chunks = 1
            else:
                # Cap at members // 2 so no chunk degenerates to a
                # single: with fewer members than 2*workers, a shared
                # scan per pair still beats per-query rebuilds.
                chunks = max(1, min(self.workers, len(members) // 2))
            base, rem = divmod(len(members), chunks)
            start = 0
            for c in range(chunks):
                size = base + (1 if c < rem else 0)
                part = members[start : start + size]
                start += size
                if len(part) < 2:
                    singles.extend(part)
                    continue
                wire = ("group", tuple(job_specs[j] for j in part), key[2])
                payloads.append((wire, part))
                if _obs.enabled:
                    _obs.inc("repro_plan_groups_total")
                    _obs.observe("repro_plan_group_size", len(part))
        if _obs.enabled and singles:
            _obs.inc("repro_plan_singles_total", len(singles))
        for j in singles:
            payloads.append((("single", job_specs[j]), [j]))
        payloads.sort(key=lambda p: p[1][0])

        outs = self._execute_payloads([wire for wire, _ in payloads])
        outcomes: list = [None] * len(job_specs)
        planned_jobs: set[int] = set()
        for (wire, idxs), out in zip(payloads, outs):
            if wire[0] == "single":
                outcomes[idxs[0]] = out
                continue
            for j, oc in zip(idxs, out):
                outcomes[j] = oc
                if (
                    oc.error is None
                    and oc.result is not None
                    and oc.result.algorithm == "SharedScanTRS"
                ):
                    planned_jobs.add(j)
        return outcomes, planned_jobs

    def _execute_payloads(self, wires: list) -> list:
        """Dispatch planner payloads over the configured pool. Returns
        one entry per wire: a :class:`_JobOutcome` for ``single`` wires,
        a list of them (member order) for ``group`` wires."""
        engine = self.engine
        injector, policy = self.fault_injector, self.retry_policy
        if self.pool == "process" and self.workers > 1 and len(wires) > 1:
            # Warm the plan cache first: forked workers inherit the built
            # plans via copy-on-write, and the shm publisher (when on)
            # ships them to spawn-style workers explicitly.
            manifests, initargs = self._process_initargs(warm=True)
            try:
                with ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_process_worker_init,
                    initargs=initargs,
                ) as pool:
                    # chunksize=1: payloads are few and coarse; one group
                    # per dispatch keeps workers evenly loaded.
                    return list(
                        pool.map(_process_worker_run_payload, wires, chunksize=1)
                    )
            finally:
                if manifests:
                    from repro.exec import shm as _shm

                    for m in manifests:
                        _shm.unlink_manifest(m)
        for wire in wires:
            if wire[0] == "single":
                try:
                    engine._prepare_for(wire[1])
                except ReproError:
                    pass  # resurfaces inside the job as a structured QueryError

        def run_payload(wire):
            if wire[0] == "single":
                return _run_with_recovery(engine, wire[1], injector, policy)
            _, specs, backend = wire
            return _run_group(engine, specs, backend, injector, policy)

        if self.pool == "thread" and self.workers > 1 and len(wires) > 1:
            with ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            ) as pool:
                return list(pool.map(run_payload, wires))
        return [run_payload(w) for w in wires]

    def _execute(self, job_specs: list[QuerySpec]) -> list[_JobOutcome]:
        """Run the pending jobs, returning :class:`_JobOutcome` objects in
        job order (``map`` preserves order on every pool)."""
        if not job_specs:
            return []
        engine = self.engine
        injector, policy = self.fault_injector, self.retry_policy
        if self.pool == "process" and self.workers > 1 and len(job_specs) > 1:
            manifests, initargs = self._process_initargs()
            try:
                with ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_process_worker_init,
                    initargs=initargs,
                ) as pool:
                    chunk = max(1, len(job_specs) // (self.workers * 4))
                    return list(
                        pool.map(_process_worker_run, job_specs, chunksize=chunk)
                    )
            finally:
                if manifests:
                    from repro.exec import shm as _shm

                    for m in manifests:
                        _shm.unlink_manifest(m)
        # Warm the shared algorithm instances sequentially so worker
        # threads never race on prepare() work (creation is lock-guarded
        # anyway; this avoids redundant layout sorts).
        for spec in job_specs:
            try:
                engine._prepare_for(spec)
            except ReproError:
                pass  # resurfaces inside the job as a structured QueryError

        def run_one(spec: QuerySpec) -> _JobOutcome:
            return _run_with_recovery(engine, spec, injector, policy)

        if self.pool == "thread" and self.workers > 1 and len(job_specs) > 1:
            with ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            ) as pool:
                return list(pool.map(run_one, job_specs))
        return [run_one(spec) for spec in job_specs]
