"""Concurrent batch-query execution.

The paper's scan-based algorithms are embarrassingly parallel across
*queries*: each ``run`` stages its own simulated disk, builds its own
trees and touches only read-only prepared state (the layout and the
dissimilarity lookup tables). :class:`QueryExecutor` exploits that by
fanning a batch of reverse-skyline / skyband / attribute-subset queries
over a thread or process pool, with an optional :class:`ResultCache`
memoising repeated queries and deduplicating identical queries *within*
a batch (the first occurrence in input order is computed; the rest reuse
its result).

Determinism contract: answers depend only on the spec, never on the
pool, the worker count, the cache state, or the batch order —
``tests/test_exec.py`` and ``repro.testing.verify.verify_executor``
enforce this differentially against the sequential engine.

Pools
-----
``serial``
    An inline loop — the baseline the differential tests compare against.
``thread``
    ``ThreadPoolExecutor``; shares the engine's prepared algorithm
    instances (safe: ``run`` only reads them). Best when the cache absorbs
    most of the batch or ``backing_dir`` makes queries IO-bound.
``process``
    ``ProcessPoolExecutor``; each worker builds its own engine over the
    (pickled or forked) dataset, sidestepping the GIL for CPU-bound
    batches. Worker engines are constructed once per pool, so the layout
    sort is paid per worker, not per query.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.base import Stopwatch
from repro.errors import AlgorithmError
from repro.exec.cache import CacheKey, ResultCache
from repro.exec.merge import BatchReport, merge_batch

__all__ = ["QuerySpec", "QueryExecutor", "as_spec"]

_KINDS = ("query", "skyband", "subset")


@dataclass(frozen=True)
class QuerySpec:
    """One query in a batch: what to ask, not how to run it."""

    query: tuple
    kind: str = "query"
    k: int = 1
    algorithm: str | None = None
    #: Attribute names or indices for ``kind="subset"`` (Section 5.6).
    attributes: tuple | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise AlgorithmError(
                f"unknown query kind {self.kind!r}; known: {', '.join(_KINDS)}"
            )
        if self.kind == "skyband" and self.k < 1:
            raise AlgorithmError(f"skyband needs k >= 1, got {self.k}")
        if self.kind == "subset" and not self.attributes:
            raise AlgorithmError("subset queries need a non-empty attribute tuple")


def as_spec(
    item,
    *,
    kind: str = "query",
    k: int = 1,
    algorithm: str | None = None,
    attributes: Sequence | None = None,
) -> QuerySpec:
    """Coerce a plain query tuple (or a ready spec) into a QuerySpec."""
    if isinstance(item, QuerySpec):
        return item
    return QuerySpec(
        query=tuple(item),
        kind=kind,
        k=k if kind == "skyband" else 1,
        algorithm=algorithm,
        attributes=tuple(attributes) if attributes is not None else None,
    )


# -- process-pool plumbing ----------------------------------------------------
# Workers hold their own engine (module global set by the pool initializer);
# specs go over the wire, RSResults come back — both are plain picklable
# dataclasses.
_WORKER_ENGINE = None


def _process_worker_init(dataset, algorithm, memory_fraction, page_bytes) -> None:
    global _WORKER_ENGINE
    from repro.engine import ReverseSkylineEngine

    _WORKER_ENGINE = ReverseSkylineEngine(
        dataset,
        algorithm=algorithm,
        memory_fraction=memory_fraction,
        page_bytes=page_bytes,
        log_queries=False,
    )


def _process_worker_run(spec: QuerySpec):
    assert _WORKER_ENGINE is not None, "pool initializer did not run"
    return _WORKER_ENGINE._timed_execute(spec)


class QueryExecutor:
    """Fan batches of queries over a pool, memoising through a cache.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.ReverseSkylineEngine` that owns the
        dataset and the prepared algorithm instances.
    pool:
        ``"serial"``, ``"thread"`` or ``"process"``.
    workers:
        Pool size; defaults to ``min(4, cpu_count)``.
    cache:
        ``True`` for a private :class:`ResultCache`, an existing cache to
        share (e.g. the engine's), or ``None``/``False`` for no caching.
    """

    def __init__(
        self,
        engine,
        *,
        pool: str = "thread",
        workers: int | None = None,
        cache: ResultCache | bool | None = None,
        cache_capacity: int = 1024,
    ) -> None:
        if pool not in ("serial", "thread", "process"):
            raise AlgorithmError(
                f"unknown pool kind {pool!r}; known: serial, thread, process"
            )
        self.engine = engine
        self.pool = pool
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise AlgorithmError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if cache is True:
            cache = ResultCache(cache_capacity)
        elif cache is False:
            cache = None
        self.cache = cache

    # -- public API ---------------------------------------------------------
    def run_batch(
        self,
        queries: Sequence,
        *,
        kind: str = "query",
        k: int = 1,
        algorithm: str | None = None,
        attributes: Sequence | None = None,
    ) -> BatchReport:
        """Answer every query; results come back in input order.

        ``queries`` may mix plain tuples (interpreted with the keyword
        defaults) and explicit :class:`QuerySpec` objects.
        """
        specs = [
            as_spec(q, kind=kind, k=k, algorithm=algorithm, attributes=attributes)
            for q in queries
        ]
        if not specs:
            raise AlgorithmError("need at least one query")
        engine = self.engine
        batch_watch = Stopwatch()

        n = len(specs)
        results: list = [None] * n
        cached = [False] * n
        wall_times = [0.0] * n

        # Partition the batch into cache hits and unique pending jobs.
        # Identical specs collapse onto one job whenever a cache is
        # attached (in-flight dedup); the first occurrence is the computed
        # one, later occurrences count as hits.
        jobs: list[tuple[QuerySpec, list[int]]] = []
        keys: list[CacheKey | None] = [None] * n
        if self.cache is not None:
            fingerprint = engine.layout_fingerprint()
            job_of: dict[CacheKey, int] = {}
            for i, spec in enumerate(specs):
                key = self._cache_key(spec, fingerprint)
                keys[i] = key
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                    cached[i] = True
                    continue
                j = job_of.get(key)
                if j is None:
                    job_of[key] = len(jobs)
                    jobs.append((spec, [i]))
                else:
                    jobs[j][1].append(i)
                    cached[i] = True
        else:
            jobs = [(spec, [i]) for i, spec in enumerate(specs)]

        outcomes = self._execute([spec for spec, _ in jobs])
        for (spec, indices), (result, elapsed) in zip(jobs, outcomes):
            first = indices[0]
            results[first] = result
            wall_times[first] = elapsed
            for i in indices[1:]:
                results[i] = result
            if self.cache is not None:
                self.cache.put(keys[first], result)

        # One pass in input order keeps the engine's query log and
        # aggregate counters deterministic under any pool.
        engine._record_batch(specs, results, cached, wall_times)
        return merge_batch(
            specs,
            results,
            cached,
            wall_times,
            batch_wall_time_s=batch_watch.stop(),
            pool=self.pool,
            workers=self.workers,
        )

    # -- internals ----------------------------------------------------------
    def _cache_key(self, spec: QuerySpec, fingerprint: str) -> CacheKey:
        return CacheKey(
            kind=spec.kind,
            algorithm=spec.algorithm or self.engine.default_algorithm,
            fingerprint=fingerprint,
            query=tuple(spec.query),
            k=spec.k,
            attributes=(
                self.engine._resolve_indices(spec.attributes)
                if spec.attributes is not None
                else None
            ),
        )

    def _execute(self, job_specs: list[QuerySpec]) -> list:
        """Run the pending jobs, returning ``(RSResult, wall_s)`` pairs in
        job order (``map`` preserves order on every pool)."""
        if not job_specs:
            return []
        engine = self.engine
        if self.pool == "process" and self.workers > 1 and len(job_specs) > 1:
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_process_worker_init,
                initargs=(
                    engine.dataset,
                    engine.default_algorithm,
                    engine.memory_fraction,
                    engine.page_bytes,
                ),
            ) as pool:
                chunk = max(1, len(job_specs) // (self.workers * 4))
                return list(
                    pool.map(_process_worker_run, job_specs, chunksize=chunk)
                )
        # Warm the shared algorithm instances sequentially so worker
        # threads never race on prepare() work (creation is lock-guarded
        # anyway; this avoids redundant layout sorts).
        for spec in job_specs:
            engine._prepare_for(spec)
        if self.pool == "thread" and self.workers > 1 and len(job_specs) > 1:
            with ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            ) as pool:
                return list(pool.map(engine._timed_execute, job_specs))
        return [engine._timed_execute(spec) for spec in job_specs]
