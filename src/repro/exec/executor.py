"""Concurrent batch-query execution.

The paper's scan-based algorithms are embarrassingly parallel across
*queries*: each ``run`` stages its own simulated disk, builds its own
trees and touches only read-only prepared state (the layout and the
dissimilarity lookup tables). :class:`QueryExecutor` exploits that by
fanning a batch of reverse-skyline / skyband / attribute-subset queries
over a thread or process pool, with an optional :class:`ResultCache`
memoising repeated queries and deduplicating identical queries *within*
a batch (the first occurrence in input order is computed; the rest reuse
its result).

Determinism contract: answers depend only on the spec, never on the
pool, the worker count, the cache state, or the batch order —
``tests/test_exec.py`` and ``repro.testing.verify.verify_executor``
enforce this differentially against the sequential engine.

Pools
-----
``serial``
    An inline loop — the baseline the differential tests compare against.
``thread``
    ``ThreadPoolExecutor``; shares the engine's prepared algorithm
    instances (safe: ``run`` only reads them). Best when the cache absorbs
    most of the batch or ``backing_dir`` makes queries IO-bound.
``process``
    ``ProcessPoolExecutor``; each worker builds its own engine over the
    (pickled or forked) dataset, sidestepping the GIL for CPU-bound
    batches. Worker engines are constructed once per pool, so the layout
    sort is paid per worker, not per query.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.core.base import Stopwatch
from repro.errors import AlgorithmError, ReproError, TransientError
from repro.exec.cache import CacheKey, ResultCache
from repro.exec.merge import BatchReport, QueryError, merge_batch
from repro.faults.retry import RetryPolicy
from repro.obs import hooks as _obs

__all__ = ["QuerySpec", "QueryExecutor", "as_spec"]

_KINDS = ("query", "skyband", "subset")


@dataclass(frozen=True)
class QuerySpec:
    """One query in a batch: what to ask, not how to run it."""

    query: tuple
    kind: str = "query"
    k: int = 1
    algorithm: str | None = None
    #: Attribute names or indices for ``kind="subset"`` (Section 5.6).
    attributes: tuple | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise AlgorithmError(
                f"unknown query kind {self.kind!r}; known: {', '.join(_KINDS)}"
            )
        if self.kind == "skyband" and self.k < 1:
            raise AlgorithmError(f"skyband needs k >= 1, got {self.k}")
        if self.kind == "subset" and not self.attributes:
            raise AlgorithmError("subset queries need a non-empty attribute tuple")


def as_spec(
    item,
    *,
    kind: str = "query",
    k: int = 1,
    algorithm: str | None = None,
    attributes: Sequence | None = None,
) -> QuerySpec:
    """Coerce a plain query tuple (or a ready spec) into a QuerySpec."""
    if isinstance(item, QuerySpec):
        return item
    return QuerySpec(
        query=tuple(item),
        kind=kind,
        k=k if kind == "skyband" else 1,
        algorithm=algorithm,
        attributes=tuple(attributes) if attributes is not None else None,
    )


@dataclass(frozen=True)
class _JobOutcome:
    """What one pending job produced — success or structured failure.

    Plain picklable dataclass: it is also the wire format coming back
    from process-pool workers, so per-worker cost stats (inside
    ``result.stats``, including the IO retry counters) and failures are
    never silently dropped when a pool is torn down.
    """

    result: object | None  # RSResult on success
    wall_s: float
    error: QueryError | None = None
    attempts: int = 1
    #: The job's span records (``repro.obs``), ids local to the job; the
    #: executor grafts them under the batch span in job order so the
    #: merged trace tree is identical whatever pool answered the batch.
    trace: tuple = ()
    #: Worker-local :class:`~repro.obs.metrics.MetricsSnapshot` (process
    #: pool only; serial/thread jobs write the shared registry directly).
    metrics: object | None = None


def _run_with_recovery(
    engine, spec: QuerySpec, injector, policy: RetryPolicy
) -> _JobOutcome:
    """Answer one spec, retrying transient failures, capturing the rest.

    The recovery contract the chaos harness asserts: a transient fault
    (worker crash/timeout from the injector, or a raw transient that
    escaped the storage layer) is retried under ``policy``; retry
    exhaustion and every other library error become a structured
    :class:`QueryError` outcome. Nothing an individual query does can
    abort the batch — only genuine bugs (non-``ReproError``) propagate.
    """
    handle = _obs.begin_job("exec.query", kind=spec.kind)
    attempt = 0
    outcome: _JobOutcome | None = None
    try:
        while outcome is None:
            try:
                if injector is not None:
                    injector.query_fault(spec.query)
                result, wall = engine._timed_execute(spec)
                outcome = _JobOutcome(result, wall, None, attempts=attempt + 1)
            except TransientError as exc:
                attempt += 1
                if _obs.enabled:
                    _obs.inc("repro_query_retries_total")
                try:
                    policy.backoff(attempt, exc)
                except ReproError as final:
                    outcome = _JobOutcome(
                        None,
                        0.0,
                        QueryError.from_exception(final, spec.query, attempts=attempt),
                        attempts=attempt,
                    )
            except ReproError as exc:
                # Includes RetryExhaustedError escalated by the storage layer:
                # its retry budget is spent, so it is terminal here.
                outcome = _JobOutcome(
                    None,
                    0.0,
                    QueryError.from_exception(exc, spec.query, attempts=attempt + 1),
                    attempts=attempt + 1,
                )
    finally:
        if handle is not None:
            root = handle[1]
            if outcome is not None:
                root.annotate("attempts", outcome.attempts)
                if outcome.error is not None:
                    root.annotate("failed", outcome.error.error_type)
            trace = _obs.end_job(handle)
    if handle is not None and outcome is not None:
        outcome = replace(outcome, trace=trace)
    return outcome


# -- process-pool plumbing ----------------------------------------------------
# Workers hold their own engine plus fault machinery (module globals set
# by the pool initializer); specs go over the wire, _JobOutcomes come
# back — all plain picklable dataclasses.
_WORKER_ENGINE = None
_WORKER_INJECTOR = None
_WORKER_POLICY = RetryPolicy()


def _process_worker_init(
    dataset,
    algorithm,
    memory_fraction,
    page_bytes,
    fault_plan=None,
    fault_seed=0,
    retry_args=None,
    obs_enabled=False,
    backend=None,
) -> None:
    global _WORKER_ENGINE, _WORKER_INJECTOR, _WORKER_POLICY
    from repro.engine import ReverseSkylineEngine

    if obs_enabled:
        # Mirror the parent's observability state: each job then resets
        # the worker registry, snapshots after, and ships the snapshot
        # home inside its _JobOutcome (see _process_worker_run).
        _obs.enable(reset_state=True)
    _WORKER_INJECTOR = None
    if fault_plan is not None:
        from repro.faults.inject import FaultInjector

        _WORKER_INJECTOR = FaultInjector(fault_plan, fault_seed)
    _WORKER_POLICY = RetryPolicy(**retry_args) if retry_args else RetryPolicy()
    _WORKER_ENGINE = ReverseSkylineEngine(
        dataset,
        algorithm=algorithm,
        memory_fraction=memory_fraction,
        page_bytes=page_bytes,
        log_queries=False,
        fault_injector=_WORKER_INJECTOR,
        retry_policy=_WORKER_POLICY,
        backend=backend,
    )


def _process_worker_run(spec: QuerySpec) -> _JobOutcome:
    assert _WORKER_ENGINE is not None, "pool initializer did not run"
    if _obs.enabled:
        _obs.registry().reset()
    outcome = _run_with_recovery(
        _WORKER_ENGINE, spec, _WORKER_INJECTOR, _WORKER_POLICY
    )
    if _obs.enabled:
        # Per-job delta snapshot; the parent merges them in job order
        # (sums commute, so worker scheduling cannot change the totals).
        outcome = replace(outcome, metrics=_obs.snapshot())
    return outcome


class QueryExecutor:
    """Fan batches of queries over a pool, memoising through a cache.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.ReverseSkylineEngine` that owns the
        dataset and the prepared algorithm instances.
    pool:
        ``"serial"``, ``"thread"`` or ``"process"``.
    workers:
        Pool size; defaults to ``min(4, cpu_count)``.
    cache:
        ``True`` for a private :class:`ResultCache`, an existing cache to
        share (e.g. the engine's), or ``None``/``False`` for no caching.
    fault_injector / retry_policy:
        Fault machinery for worker-level faults and query retries;
        default to the engine's own (set when the engine was constructed
        with a :class:`~repro.faults.FaultInjector`).
    """

    def __init__(
        self,
        engine,
        *,
        pool: str = "thread",
        workers: int | None = None,
        cache: ResultCache | bool | None = None,
        cache_capacity: int = 1024,
        fault_injector=None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if pool not in ("serial", "thread", "process"):
            raise AlgorithmError(
                f"unknown pool kind {pool!r}; known: serial, thread, process"
            )
        self.engine = engine
        self.pool = pool
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise AlgorithmError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if cache is True:
            cache = ResultCache(cache_capacity)
        elif cache is False:
            cache = None
        self.cache = cache
        if fault_injector is None:
            fault_injector = getattr(engine, "fault_injector", None)
        self.fault_injector = fault_injector
        if retry_policy is None:
            retry_policy = getattr(engine, "retry_policy", None) or RetryPolicy()
        self.retry_policy = retry_policy

    # -- public API ---------------------------------------------------------
    def run_batch(
        self,
        queries: Sequence,
        *,
        kind: str = "query",
        k: int = 1,
        algorithm: str | None = None,
        attributes: Sequence | None = None,
    ) -> BatchReport:
        """Answer every query; results come back in input order.

        ``queries`` may mix plain tuples (interpreted with the keyword
        defaults) and explicit :class:`QuerySpec` objects. A query that
        fails past recovery becomes a structured error entry in the
        report (``results[i] is None``, ``errors[i]`` set) — it never
        aborts the rest of the batch.
        """
        specs = [
            as_spec(q, kind=kind, k=k, algorithm=algorithm, attributes=attributes)
            for q in queries
        ]
        if not specs:
            raise AlgorithmError("need at least one query")
        engine = self.engine
        batch_watch = Stopwatch()

        n = len(specs)
        results: list = [None] * n
        cached = [False] * n
        deduped = [False] * n
        wall_times = [0.0] * n
        errors: list[QueryError | None] = [None] * n

        batch_span = _obs.span(
            "exec.batch", pool=self.pool, workers=self.workers, queries=n
        )
        batch_span.__enter__()
        try:

            # Partition the batch into cache hits and unique pending jobs.
            # Identical specs collapse onto one job whenever a cache is
            # attached (in-flight dedup); the first occurrence is the computed
            # one, later occurrences count as hits.
            jobs: list[tuple[QuerySpec, list[int]]] = []
            keys: list[CacheKey | None] = [None] * n
            cache_version: int | None = None
            if self.cache is not None:
                fingerprint = engine.layout_fingerprint()
                # Snapshot the cache version with the fingerprint: an
                # invalidate() racing this batch must drop our later put()s,
                # not let them re-insert results keyed by the old fingerprint.
                cache_version = self.cache.version
                job_of: dict[CacheKey, int] = {}
                for i, spec in enumerate(specs):
                    try:
                        key = self._cache_key(spec, fingerprint)
                    except ReproError:
                        # An unresolvable spec (e.g. unknown attribute) is
                        # uncacheable; run it as its own job so the failure
                        # is captured per-query, not thrown at the batch.
                        jobs.append((spec, [i]))
                        continue
                    keys[i] = key
                    hit = self.cache.get(key)
                    if hit is not None:
                        results[i] = hit
                        cached[i] = True
                        continue
                    j = job_of.get(key)
                    if j is None:
                        job_of[key] = len(jobs)
                        jobs.append((spec, [i]))
                    else:
                        jobs[j][1].append(i)
                        cached[i] = True
                        deduped[i] = True
            else:
                jobs = [(spec, [i]) for i, spec in enumerate(specs)]

            outcomes = self._execute([spec for spec, _ in jobs])
            for (spec, indices), outcome in zip(jobs, outcomes):
                if _obs.enabled:
                    # Job order, not completion order: grafted span ids
                    # and merged counters come out identical for serial,
                    # thread and process pools.
                    if outcome.trace:
                        # getattr: if obs was flipped on mid-batch the
                        # batch span is the null span; graft as roots.
                        _obs.adopt_job_trace(
                            outcome.trace,
                            parent_id=getattr(batch_span, "span_id", None),
                        )
                    if outcome.metrics is not None:
                        _obs.registry().merge(outcome.metrics)
                first = indices[0]
                if outcome.error is not None:
                    # The whole dedup group shares the failure; none of its
                    # slots counts as a cache hit and nothing is cached.
                    for i in indices:
                        results[i] = None
                        errors[i] = outcome.error
                        cached[i] = False
                        deduped[i] = False
                    continue
                results[first] = outcome.result
                wall_times[first] = outcome.wall_s
                for i in indices[1:]:
                    results[i] = outcome.result
                if self.cache is not None and keys[first] is not None:
                    self.cache.put(keys[first], outcome.result, version=cache_version)

            # One pass in input order keeps the engine's query log and
            # aggregate counters deterministic under any pool.
            engine._record_batch(specs, results, cached, wall_times, errors)
            report = merge_batch(
                specs,
                results,
                cached,
                wall_times,
                batch_wall_time_s=batch_watch.stop(),
                pool=self.pool,
                workers=self.workers,
                errors=errors,
                deduped=deduped,
            )
            if _obs.enabled:
                batch_span.annotate("memo_hits", report.memo_hits)
                batch_span.annotate("dedup_hits", report.dedup_hits)
                batch_span.annotate("failed", report.failed)
                _obs.inc("repro_batches_total", 1, pool=self.pool)
                _obs.inc("repro_batch_queries_total", n)
                _obs.inc("repro_batch_memo_hits_total", report.memo_hits)
                _obs.inc("repro_batch_dedup_hits_total", report.dedup_hits)
                _obs.inc("repro_batch_failures_total", report.failed)
                _obs.observe("repro_batch_wall_seconds", report.wall_time_s)
            return report
        finally:
            batch_span.__exit__(None, None, None)

    # -- internals ----------------------------------------------------------
    def _cache_key(self, spec: QuerySpec, fingerprint: str) -> CacheKey:
        return CacheKey(
            kind=spec.kind,
            algorithm=spec.algorithm or self.engine.default_algorithm,
            fingerprint=fingerprint,
            query=tuple(spec.query),
            k=spec.k,
            attributes=(
                self.engine._resolve_indices(spec.attributes)
                if spec.attributes is not None
                else None
            ),
        )

    def _retry_args(self) -> dict:
        """The retry policy as picklable constructor kwargs for process
        workers (a custom ``sleep`` hook stays local — workers use the
        real ``time.sleep``)."""
        p = self.retry_policy
        return {
            "max_attempts": p.max_attempts,
            "base_delay_s": p.base_delay_s,
            "multiplier": p.multiplier,
            "max_delay_s": p.max_delay_s,
        }

    def _execute(self, job_specs: list[QuerySpec]) -> list[_JobOutcome]:
        """Run the pending jobs, returning :class:`_JobOutcome` objects in
        job order (``map`` preserves order on every pool)."""
        if not job_specs:
            return []
        engine = self.engine
        injector, policy = self.fault_injector, self.retry_policy
        if self.pool == "process" and self.workers > 1 and len(job_specs) > 1:
            fault_plan = injector.plan if injector is not None else None
            fault_seed = injector.seed if injector is not None else 0
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_process_worker_init,
                initargs=(
                    engine.dataset,
                    engine.default_algorithm,
                    engine.memory_fraction,
                    engine.page_bytes,
                    fault_plan,
                    fault_seed,
                    self._retry_args(),
                    _obs.enabled,
                    getattr(engine, "backend", None),
                ),
            ) as pool:
                chunk = max(1, len(job_specs) // (self.workers * 4))
                return list(
                    pool.map(_process_worker_run, job_specs, chunksize=chunk)
                )
        # Warm the shared algorithm instances sequentially so worker
        # threads never race on prepare() work (creation is lock-guarded
        # anyway; this avoids redundant layout sorts).
        for spec in job_specs:
            try:
                engine._prepare_for(spec)
            except ReproError:
                pass  # resurfaces inside the job as a structured QueryError

        def run_one(spec: QuerySpec) -> _JobOutcome:
            return _run_with_recovery(engine, spec, injector, policy)

        if self.pool == "thread" and self.workers > 1 and len(job_specs) > 1:
            with ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            ) as pool:
                return list(pool.map(run_one, job_specs))
        return [run_one(spec) for spec in job_specs]
