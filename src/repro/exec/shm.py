"""Zero-copy publication of plan artifacts to process-pool workers.

The process pool used to ship the *whole dataset* to every worker by
pickle (``initargs``) and let each worker rebuild its dissimilarity
matrices, columnar AL-Tree plans and scan arrays from scratch.  All of
those are immutable numpy arrays, so this module packs them into **one**
``multiprocessing.shared_memory`` segment that every worker maps
read-only:

- :func:`publish_engine` flattens the engine's dataset (records as an
  ``n x m`` int array, per-attribute dissimilarity matrices) together
  with every already-built :class:`~repro.core.vector_trs.VectorTRS`
  plan into named arrays, packs them 64-byte aligned into a fresh
  segment, and returns a small picklable :class:`ShmManifest`.
- Workers call :func:`attach_arrays` (zero-copy views into the mapping),
  :func:`dataset_from_manifest` (tuples are materialised — the scalar
  hot loops want plain Python values — but every array stays a view)
  and :func:`seed_plan_cache`, which drops the imported plans straight
  into :mod:`repro.kernels.plancache` under the *same* content keys the
  worker's own ``VectorTRS`` instances would compute, so no worker ever
  rebuilds a plan the parent already has.

Segment lifecycle (the crash-cleanup story):

- The creating process owns the segment: it appears in
  :func:`active_segments` until :func:`unlink_manifest` runs, which the
  executor calls in a ``finally`` around the pool — a crashed worker
  (or a ``BrokenProcessPool``) therefore cannot leak the segment.
- Workers only ever *attach*.  Attachment unregisters the mapping from
  the ``resource_tracker`` (otherwise every worker exit would unlink a
  segment it does not own) and closes it via ``atexit``.
- If the creating process itself dies before unlinking, its own
  ``resource_tracker`` reclaims the segment; ``unlink_manifest`` treats
  an already-gone segment as success so the paths compose.

All names carry the ``repro-shm-`` prefix so CI leak gates can audit
``/dev/shm`` directly.  Segment count and bytes are exported as
``repro_shm_segments`` / ``repro_shm_bytes`` gauges.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.obs import hooks as _obs

__all__ = [
    "SHM_PREFIX",
    "ShmManifest",
    "active_segments",
    "attach_arrays",
    "attached_segments",
    "dataset_from_manifest",
    "deltas_from_manifest",
    "detach_manifest",
    "publish_arrays",
    "publish_dataset",
    "publish_deltas",
    "publish_engine",
    "seed_plan_cache",
    "unlink_manifest",
]

SHM_PREFIX = "repro-shm-"
_ALIGN = 64

#: Guards ``_OWNED``/``_ATTACHED`` mutation and — critically — the
#: pre-3.13 ``resource_tracker.register`` monkey-patch in
#: :func:`attach_arrays`: two threads attaching concurrently without it
#: can capture the no-op as ``orig`` and restore it permanently,
#: silently disabling tracker registration process-wide.
_LOCK = threading.Lock()

#: Segments created (and not yet unlinked) by this process.
_OWNED: dict[str, shared_memory.SharedMemory] = {}
#: Segments this process attached to (worker side); closed at exit.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_COUNTER = itertools.count()


@dataclass(frozen=True)
class ShmManifest:
    """Picklable description of one packed segment.

    ``entries`` maps each array to its slot: ``(key, dtype_str, shape,
    offset)``.  ``meta`` carries whatever small picklable metadata the
    publisher attached (schema description, plan keys, ...).
    """

    shm_name: str
    total_bytes: int
    entries: tuple
    meta: dict


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _gauges() -> None:
    if _obs.enabled:
        with _LOCK:
            count = len(_OWNED)
            total = sum(s.size for s in _OWNED.values())
        _obs.set_gauge("repro_shm_segments", float(count))
        _obs.set_gauge("repro_shm_bytes", float(total))


def active_segments() -> tuple[str, ...]:
    """Names of segments this process created and has not unlinked —
    the quantity the chaos leak gate asserts is empty after a batch."""
    with _LOCK:
        return tuple(_OWNED)


def attached_segments() -> tuple[str, ...]:
    """Names of segments this process has attached to (and not yet
    detached) — the resident-server counterpart of
    :func:`active_segments`: a long-lived process that republishes
    datasets must see this stay bounded, not grow per swap."""
    with _LOCK:
        return tuple(_ATTACHED)


def publish_arrays(arrays: dict, meta: dict | None = None) -> ShmManifest:
    """Pack named numpy arrays into one fresh shared-memory segment."""
    entries = []
    offset = 0
    contig = {}
    for key, arr in arrays.items():
        a = np.ascontiguousarray(arr)
        contig[key] = a
        entries.append((key, a.dtype.str, tuple(a.shape), offset))
        offset = _aligned(offset + a.nbytes)
    name = f"{SHM_PREFIX}{os.getpid()}-{next(_COUNTER)}-{secrets.token_hex(4)}"
    seg = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
    for (key, _dt, _shape, off) in entries:
        a = contig[key]
        if a.nbytes:
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=seg.buf, offset=off)
            dst[...] = a
    with _LOCK:
        _OWNED[name] = seg
    if _obs.enabled:
        _obs.inc("repro_shm_publish_total")
    _gauges()
    return ShmManifest(
        shm_name=name,
        total_bytes=seg.size,
        entries=tuple(entries),
        meta=dict(meta or {}),
    )


def attach_arrays(manifest: ShmManifest) -> dict:
    """Zero-copy, read-only views of a published segment's arrays.

    The mapping is cached per segment name (so repeated calls in one
    worker share it), unregistered from the ``resource_tracker`` (the
    attacher does not own the segment) and closed at interpreter exit.
    """
    with _LOCK:
        seg = _OWNED.get(manifest.shm_name) or _ATTACHED.get(manifest.shm_name)
        if seg is None:
            # Attachers must not register with the resource tracker: pools
            # share the parent's tracker process, so a second registration
            # for the same name turns the parent's eventual unlink into a
            # double-remove (noisy KeyError) — or worse, lets a worker exit
            # unlink a segment it does not own. Python 3.13 has track=False
            # for exactly this; on older interpreters suppress the
            # registration call for the duration of the attach. The whole
            # patch/attach/restore sequence runs under ``_LOCK``: without
            # it a second thread could capture the no-op as ``orig`` and
            # restore it permanently.
            try:
                seg = shared_memory.SharedMemory(
                    name=manifest.shm_name, create=False, track=False
                )
            except TypeError:
                orig = resource_tracker.register
                resource_tracker.register = lambda *a, **k: None
                try:
                    seg = shared_memory.SharedMemory(
                        name=manifest.shm_name, create=False
                    )
                finally:
                    resource_tracker.register = orig
            _ATTACHED[manifest.shm_name] = seg
            if _obs.enabled:
                _obs.inc("repro_shm_attach_total")
    out = {}
    for key, dtype_str, shape, off in manifest.entries:
        view = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=seg.buf, offset=off)
        view.flags.writeable = False
        out[key] = view
    return out


def unlink_manifest(manifest: ShmManifest | str) -> None:
    """Close and unlink a segment this process created.  Idempotent, and
    an already-reclaimed segment (crashed creator, double close) counts
    as success."""
    name = manifest if isinstance(manifest, str) else manifest.shm_name
    with _LOCK:
        seg = _OWNED.pop(name, None)
    if seg is None:
        _gauges()
        return
    try:
        seg.close()
    except Exception:
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
    if _obs.enabled:
        _obs.inc("repro_shm_unlink_total")
    _gauges()


def detach_manifest(manifest: ShmManifest | str) -> bool:
    """Drop this process's *attachment* to a segment it does not own.

    The attach cache (:data:`_ATTACHED`) otherwise grows monotonically
    until interpreter exit — harmless in a one-shot batch worker, a real
    mapping leak in a resident server that republishes datasets across
    swaps/reloads. The server calls this for the outgoing manifest when
    it swaps datasets.

    Deliberately **not** ``seg.close()``: numpy releases its buffer
    export when a view is constructed and keeps only a reference to the
    underlying ``mmap`` object, so CPython happily unmaps a segment that
    live views still alias — turning a late reader into a segfault.
    Instead the file descriptor is closed eagerly and our references are
    dropped; the mapping itself is torn down by refcount the moment the
    last view dies. Detach is therefore always safe to call, even with
    views outstanding.

    Returns ``True`` when an attachment was dropped, ``False`` when this
    process never attached ``manifest`` (owners unlink instead — their
    lifecycle is :func:`unlink_manifest`, which this does not touch).
    """
    name = manifest if isinstance(manifest, str) else manifest.shm_name
    with _LOCK:
        seg = _ATTACHED.pop(name, None)
    if seg is None:
        return False
    if not _posix_detach(seg):
        # Unknown SharedMemory internals (non-CPython, Windows, a future
        # layout change): fall back to the public close(). It raises
        # BufferError when live views still alias the mapping — in that
        # case the mapping survives until the views die, which is merely
        # the pre-detach status quo, never a crash.
        try:
            seg.close()
        except BufferError:  # pragma: no cover - live views outstanding
            pass
    if _obs.enabled:
        _obs.inc("repro_shm_detach_total")
    return True


def _posix_detach(seg) -> bool:
    """Release a mapping through CPython's POSIX ``SharedMemory``
    internals (``_buf``/``_fd``/``_mmap``), which — unlike the public
    ``close()`` — stays safe with live numpy views outstanding: the fd
    closes now, our references drop, and the mapping itself is unmapped
    by refcount the moment the last view dies.

    Returns ``False`` without touching anything when the object does not
    have the expected shape (no ``_fd`` on Windows, alternative
    interpreters, future stdlib layouts), so the caller can fall back to
    the public API instead of silently leaking.
    """
    if not (hasattr(seg, "_buf") and hasattr(seg, "_mmap") and hasattr(seg, "_fd")):
        return False
    buf = seg._buf
    if buf is not None:
        try:
            buf.release()
        except BufferError:  # pragma: no cover - exported memoryview
            pass
        else:
            seg._buf = None
    fd = seg._fd
    if isinstance(fd, int) and fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass
        seg._fd = -1
    # Drop the mmap reference: live views keep the mapping alive until
    # they die; with none left it unmaps immediately.
    seg._mmap = None
    return True


@atexit.register
def _cleanup() -> None:  # pragma: no cover - interpreter teardown
    with _LOCK:
        owned = list(_OWNED)
        attached = list(_ATTACHED.values())
        _ATTACHED.clear()
    for name in owned:
        unlink_manifest(name)
    for seg in attached:
        try:
            seg.close()
        except Exception:
            pass


# -- engine publication -------------------------------------------------------


def _dataset_arrays(dataset) -> tuple[dict, dict] | None:
    """Flatten a dataset into publishable arrays plus manifest meta.

    Returns ``None`` when the dataset cannot be represented as flat
    arrays (numeric attributes / non-matrix dissimilarities) — callers
    fall back to the pickle path and count the fallback.
    """
    from repro.dissim.matrix import MatrixDissimilarity

    schema = dataset.schema
    if not all(a.is_categorical for a in schema):
        return None
    if not all(
        isinstance(d, MatrixDissimilarity) for d in dataset.space.dissims
    ):
        return None

    arrays: dict = {
        "data.values": np.asarray(dataset.records, dtype=np.int64).reshape(
            len(dataset.records), len(schema)
        )
    }
    meta: dict = {
        "dataset_name": dataset.name,
        "num_records": len(dataset.records),
        "cardinalities": [a.cardinality for a in schema],
        "attr_names": [a.name for a in schema],
        "attr_labels": [list(a.labels) if a.labels else None for a in schema],
        "dissim_labels": [],
        "plans": [],
    }
    for i, d in enumerate(dataset.space.dissims):
        arrays[f"dissim{i}"] = np.ascontiguousarray(d.matrix, dtype=float)
        labels = getattr(d, "labels", None)
        meta["dissim_labels"].append(list(labels) if labels else None)
    return arrays, meta


def publish_dataset(dataset) -> ShmManifest | None:
    """Publish one dataset (records + dissimilarity matrices, no plans)
    into its own segment — the per-shard unit of sharing for
    :class:`repro.shard.scatter.ScatterGatherTRS`. Returns ``None`` when
    the dataset cannot be flattened (see :func:`_dataset_arrays`)."""
    packed = _dataset_arrays(dataset)
    if packed is None:
        return None
    arrays, meta = packed
    return publish_arrays(arrays, meta)


def publish_engine(engine) -> ShmManifest | None:
    """Publish an engine's dataset plus every built VectorTRS plan.

    Returns ``None`` when the dataset cannot be represented as flat
    arrays — callers fall back to the pickle ``initargs`` path and count
    the fallback.
    """
    from repro.core.indexed import IndexedTRS
    from repro.core.vector_trs import VectorTRS, export_plan
    from repro.index.tree import export_index

    packed = _dataset_arrays(engine.dataset)
    if packed is None:
        return None
    arrays, meta = packed
    meta["indexes"] = []

    # Ship every phase-1/scan plan the parent has already paid for, so
    # workers import instead of rebuilding. The planner's warmed holder
    # (see ``repro.exec.executor._warm_plan_cache``) counts too; dedupe
    # on the plan-cache identity so it and a prepared engine VectorTRS
    # do not publish the same arrays twice.
    holders = list(getattr(engine, "_algorithms", {}).values())
    warm = engine.__dict__.get("_plan_warm")
    if warm is not None:
        holders.append(warm)
    published: set = set()
    published_indexes: set = set()
    for j, algo in enumerate(holders):
        # Prepared ITRS holders ship their pruning tree too, so pool
        # workers import the index instead of rebuilding it per process.
        if isinstance(algo, IndexedTRS):
            index = algo._index_cache
            fp = algo._index_fp
            if index is None or fp is None:
                continue
            identity = (fp, index.params.key())
            if identity in published_indexes:
                continue
            published_indexes.add(identity)
            prefix = f"idx{j}."
            idx_meta, idx_arrays = export_index(index)
            for key, arr in idx_arrays.items():
                arrays[prefix + key] = arr
            meta["indexes"].append(
                {"prefix": prefix, "fingerprint": fp, "meta": idx_meta}
            )
            continue
        if not isinstance(algo, VectorTRS):
            continue
        batches = getattr(algo, "_p1_cache", None)
        if not batches or algo._p1_cache_layout is not algo._layout:
            continue
        identity = (algo._plan_fp(), algo.budget.pages, algo.page_bytes)
        if identity in published:
            continue
        published.add(identity)
        prefix = f"plan{j}."
        p1_meta, p1_arrays = export_plan(batches)
        for key, arr in p1_arrays.items():
            arrays[prefix + key] = arr
        plan_info = {
            "prefix": prefix,
            "fingerprint": algo._plan_fp(),
            "budget_pages": algo.budget.pages,
            "page_bytes": algo.page_bytes,
            "p1_meta": p1_meta,
            "scan": False,
        }
        scan = getattr(algo, "_scan_cache", None)
        if scan is not None and algo._scan_cache_layout is algo._layout:
            ids, vals, pages = scan
            arrays[prefix + "scan_ids"] = ids
            arrays[prefix + "scan_vals"] = vals
            arrays[prefix + "scan_pages"] = pages
            plan_info["scan"] = True
        meta["plans"].append(plan_info)
    return publish_arrays(arrays, meta)


def publish_deltas(blob: dict) -> ShmManifest | None:
    """Publish a maintained engine's delta wire state (see
    :meth:`repro.maint.MaintStore.wire_state`) as its own segment,
    alongside the base manifest.

    The segment carries the uncompacted insert ids/values and the
    tombstoned stable ids as flat int arrays; it shares the
    ``repro-shm-`` prefix and the owner-unlinks lifecycle with the base
    segment, so the ``/dev/shm`` leak audits cover delta segments with
    no extra bookkeeping. Returns ``None`` when the blob is empty (no
    pending mutations — workers then start from the bare base) or when
    the delta values cannot be flattened to ints.
    """
    deltas = blob.get("deltas") or []
    tombstones = blob.get("tombstones") or []
    if not deltas and not tombstones:
        return None
    base_ids = blob.get("base_ids")
    try:
        ids = np.asarray([sid for sid, _ in deltas], dtype=np.int64)
        num_attrs = len(deltas[0][1]) if deltas else 0
        vals = np.asarray(
            [list(v) for _, v in deltas], dtype=np.int64
        ).reshape(len(deltas), num_attrs)
        tomb = np.asarray(list(tombstones), dtype=np.int64)
        # Non-identity stable-id table (present after a compaction) —
        # an empty array stands in for None, the identity mapping.
        bids = np.asarray(
            list(base_ids) if base_ids is not None else [], dtype=np.int64
        )
    except (TypeError, ValueError, OverflowError):
        return None
    return publish_arrays(
        {"delta.ids": ids, "delta.vals": vals, "delta.tomb": tomb,
         "base.ids": bids},
        {"kind": "maint-deltas", "epoch": int(blob["epoch"])},
    )


def deltas_from_manifest(manifest: ShmManifest) -> dict:
    """Rebuild a :func:`publish_deltas` blob from an attached segment
    (worker side). Values come back as plain tuples — the maintenance
    store keeps deltas in Python structures, never as array views."""
    arrays = attach_arrays(manifest)
    ids = arrays["delta.ids"]
    vals = arrays["delta.vals"]
    bids = arrays.get("base.ids")
    return {
        "epoch": int(manifest.meta["epoch"]),
        "deltas": [
            (int(sid), tuple(int(v) for v in row))
            for sid, row in zip(ids, vals)
        ],
        "tombstones": [int(t) for t in arrays["delta.tomb"]],
        "base_ids": (
            tuple(int(i) for i in bids)
            if bids is not None and len(bids)
            else None
        ),
    }


def dataset_from_manifest(manifest: ShmManifest):
    """Rebuild the dataset from an attached segment.

    Records become plain Python tuples (the scalar algorithms and the
    storage codec iterate them in tight loops); the dissimilarity
    matrices stay zero-copy shared views.
    """
    from repro.data.dataset import Dataset
    from repro.data.schema import CATEGORICAL, Attribute, Schema
    from repro.dissim.matrix import MatrixDissimilarity
    from repro.dissim.space import DissimilaritySpace

    arrays = attach_arrays(manifest)
    meta = manifest.meta
    attributes = [
        Attribute(
            name,
            CATEGORICAL,
            card,
            labels=tuple(labels) if labels else None,
        )
        for name, card, labels in zip(
            meta["attr_names"], meta["cardinalities"], meta["attr_labels"]
        )
    ]
    dissims = [
        MatrixDissimilarity(
            arrays[f"dissim{i}"],
            labels=meta["dissim_labels"][i],
            require_zero_diagonal=False,
        )
        for i in range(len(attributes))
    ]
    records = [tuple(map(int, row)) for row in arrays["data.values"]]
    return Dataset(
        Schema(attributes),
        records,
        DissimilaritySpace(dissims),
        validate=False,
        name=meta["dataset_name"],
    )


def seed_plan_cache(manifest: ShmManifest) -> int:
    """Import every published plan into the process-wide plan cache
    under the keys the worker's own ``VectorTRS`` would compute.
    Returns the number of artifacts seeded."""
    from repro.core.vector_trs import import_plan
    from repro.kernels.plancache import PlanKey, plan_cache

    arrays = attach_arrays(manifest)
    cache = plan_cache()
    seeded = 0
    for plan in manifest.meta.get("plans", ()):
        prefix = plan["prefix"]
        fp = plan["fingerprint"]
        sub = {
            key[len(prefix):]: arr
            for key, arr in arrays.items()
            if key.startswith(prefix)
        }
        mats = [
            arrays[f"dissim{i}"]
            for i in range(len(manifest.meta["cardinalities"]))
        ]
        cache.put(PlanKey("dissim", fp), mats)
        seeded += 1
        batches = import_plan(plan["p1_meta"], sub)
        cache.put(
            PlanKey("phase1", fp, (plan["budget_pages"], plan["page_bytes"])),
            batches,
        )
        seeded += 1
        if plan["scan"]:
            cache.put(
                PlanKey("scan", fp, (plan["page_bytes"],)),
                (sub["scan_ids"], sub["scan_vals"], sub["scan_pages"]),
            )
            seeded += 1
    for idx in manifest.meta.get("indexes", ()):
        from repro.index.tree import import_index

        prefix = idx["prefix"]
        sub = {
            key[len(prefix):]: arr
            for key, arr in arrays.items()
            if key.startswith(prefix)
        }
        index = import_index(idx["meta"], sub, arrays["data.values"])
        cache.put(
            PlanKey("index", idx["fingerprint"], index.params.key()),
            index,
            nbytes=index.memory_bytes(),
        )
        seeded += 1
    return seeded
