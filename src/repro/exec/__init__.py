"""Concurrent batch-query execution with result caching.

The scale-out layer over :class:`~repro.engine.ReverseSkylineEngine`:

- :class:`~repro.exec.executor.QueryExecutor` — fans a batch of queries
  over a serial / thread / process pool.
- :class:`~repro.exec.cache.ResultCache` — thread-safe LRU memoisation
  keyed by (kind, algorithm, layout fingerprint, query, k, attributes).
- :class:`~repro.exec.merge.BatchReport` — deterministic, input-ordered
  merge of per-query results and :class:`~repro.core.base.CostStats`.
- :mod:`repro.exec.shm` — zero-copy publication of the dataset and the
  built numpy plans to process-pool workers over
  ``multiprocessing.shared_memory``.

``QueryExecutor(plan=True)`` adds the batch planner: compatible specs
are grouped and answered through shared multi-query scans (results stay
bit-identical; see ``docs/performance.md``).

Verified differentially against the sequential engine by
:func:`repro.testing.verify.verify_executor`.
"""

from repro.exec.cache import CacheKey, CacheStats, ResultCache
from repro.exec.executor import QueryExecutor, QuerySpec, as_spec
from repro.exec.merge import BatchReport, QueryError, merge_batch
from repro.exec.shm import ShmManifest

__all__ = [
    "BatchReport",
    "CacheKey",
    "CacheStats",
    "QueryError",
    "QueryExecutor",
    "QuerySpec",
    "ResultCache",
    "ShmManifest",
    "as_spec",
    "merge_batch",
]
