"""Thread-safe LRU cache for reverse-skyline query results.

Production traffic repeats itself: the same probe objects are re-ranked,
the same dashboard queries re-fire. Reverse-skyline answers are pure
functions of (algorithm, physical layout, query, k), so the executor
memoises them in an LRU map keyed by exactly that tuple plus the engine's
*layout fingerprint* — a content hash of the dataset and its physical
order. A changed dataset yields a new fingerprint, so stale entries can
never be returned; :meth:`ResultCache.invalidate` additionally drops them
eagerly.

All operations take a single lock; the cached values (:class:`RSResult`)
are frozen dataclasses and safe to share across threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.base import RSResult
from repro.errors import ReproError
from repro.obs import hooks as _obs

__all__ = ["CacheKey", "CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CacheKey:
    """Identity of one memoisable query.

    ``fingerprint`` binds the entry to a specific dataset content and
    physical layout (see ``ReverseSkylineEngine.layout_fingerprint``);
    ``k`` is the skyband depth (1 for plain reverse skyline);
    ``attributes`` is the resolved attribute-index subset for Section 5.6
    queries (``None`` for full-schema queries).
    """

    kind: str
    algorithm: str
    fingerprint: str
    query: tuple
    k: int = 1
    attributes: tuple[int, ...] | None = None
    #: The request's approximate-mode recall contract (``None`` = exact).
    #: Part of the key: a cached *exact* answer must never satisfy an
    #: approximate request (or vice versa) — the two are different
    #: results with different cost/recall accounting.
    recall_target: float | None = None


@dataclass
class CacheStats:
    """Counters for observability (snapshot via :meth:`ResultCache.stats`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Inserts dropped because the cache was invalidated between the
    #: caller's miss and its ``put`` (see :meth:`ResultCache.put`).
    stale_rejects: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Bounded LRU map from :class:`CacheKey` to :class:`RSResult`."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, RSResult] = OrderedDict()
        self._stats = CacheStats()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped by :meth:`invalidate`. Snapshot it
        before computing a missed entry and pass it to :meth:`put` so an
        invalidation that happened in between drops the insert instead of
        resurrecting a result computed against the old dataset state."""
        with self._lock:
            return self._version

    def get(self, key: CacheKey) -> RSResult | None:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._stats.misses += 1
            else:
                self._entries.move_to_end(key)
                self._stats.hits += 1
        if _obs.enabled:
            _obs.inc(
                "repro_result_cache_lookups_total",
                outcome="miss" if result is None else "hit",
            )
        return result

    def put(self, key: CacheKey, result: RSResult, *, version: int | None = None) -> None:
        """Insert one entry. ``version`` (from :attr:`version`, read at
        miss time) makes the insert conditional: if :meth:`invalidate`
        ran since, the entry is stale — its fingerprint was computed
        against the pre-invalidation dataset state — and is rejected
        rather than re-inserted under the old key."""
        evicted = 0
        with self._lock:
            if version is not None and version != self._version:
                self._stats.stale_rejects += 1
                if _obs.enabled:
                    _obs.inc("repro_result_cache_stale_rejects_total")
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
                evicted += 1
            size = len(self._entries)
        if _obs.enabled:
            _obs.inc("repro_result_cache_inserts_total")
            if evicted:
                _obs.inc("repro_result_cache_evictions_total", evicted)
            _obs.set_gauge("repro_result_cache_size", size)

    def invalidate(self) -> int:
        """Drop every entry (call when the dataset changes). Returns the
        number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._stats.invalidations += 1
            self._version += 1
        if _obs.enabled:
            _obs.inc("repro_result_cache_invalidations_total")
            _obs.set_gauge("repro_result_cache_size", 0)
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                self._stats.hits,
                self._stats.misses,
                self._stats.evictions,
                self._stats.invalidations,
                self._stats.stale_rejects,
            )
